#!/usr/bin/env bash
# Runs the membership-engine benchmarks (bench_lincheck + bench_detection)
# and folds the results into BENCH_lincheck.json at the repo root, so the
# perf trajectory is tracked PR over PR.
#
# Usage: tools/run_bench.sh [build-dir] [--facet all|parallel_scaling|leveled_replay|multi_session]
#
# --facet parallel_scaling re-runs only BM_ParallelFrontierScaling and
# replaces just the `parallel_scaling` facet of BENCH_lincheck.json, leaving
# every other recorded number untouched.  Use it to re-record the scaling
# facet alone on a multi-core host (the facet is meaningless when
# num_cpus < shards, and re-running the full suite there would overwrite
# the tracked single-host trajectory).  --facet leveled_replay does the same
# for the leveled checker's rollback-storm facet (bench_leveled_replay), and
# --facet multi_session for the multi-tenant service sweep
# (bench_multi_session: sessions x shared-executor lanes, aggregate
# events/sec).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="$repo_root/BENCH_lincheck.json"

facet="all"
build_dir="$repo_root/build"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --facet)
      [[ $# -ge 2 ]] || { echo "error: --facet needs a value" >&2; exit 2; }
      facet="$2"
      shift 2
      ;;
    --*)
      echo "error: unknown flag $1" >&2
      exit 2
      ;;
    *)
      build_dir="$1"
      shift
      ;;
  esac
done
case "$facet" in
  all|parallel_scaling|leveled_replay|multi_session) ;;
  *) echo "error: unknown facet '$facet' (all | parallel_scaling | leveled_replay | multi_session)" >&2; exit 2 ;;
esac

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

if [[ ! -x "$build_dir/bench_lincheck" ]]; then
  echo "error: benchmarks not built in $build_dir (cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

if [[ "$facet" == "parallel_scaling" ]]; then
  "$build_dir/bench_lincheck" \
      --benchmark_filter='BM_ParallelFrontierScaling' \
      --benchmark_out="$tmp/lincheck.json" --benchmark_out_format=json
elif [[ "$facet" == "leveled_replay" ]]; then
  if [[ ! -x "$build_dir/bench_leveled_replay" ]]; then
    echo "error: bench_leveled_replay not built in $build_dir" >&2
    exit 1
  fi
  "$build_dir/bench_leveled_replay" \
      --benchmark_out="$tmp/leveled.json" --benchmark_out_format=json
elif [[ "$facet" == "multi_session" ]]; then
  if [[ ! -x "$build_dir/bench_multi_session" ]]; then
    echo "error: bench_multi_session not built in $build_dir" >&2
    exit 1
  fi
  "$build_dir/bench_multi_session" \
      --benchmark_out="$tmp/multi_session.json" --benchmark_out_format=json
else
  if [[ ! -x "$build_dir/bench_detection" ]]; then
    echo "error: benchmarks not built in $build_dir (cmake -B build -S . && cmake --build build -j)" >&2
    exit 1
  fi
  "$build_dir/bench_lincheck" \
      --benchmark_out="$tmp/lincheck.json" --benchmark_out_format=json
  "$build_dir/bench_detection" \
      --benchmark_out="$tmp/detection.json" --benchmark_out_format=json
  if [[ -x "$build_dir/bench_leveled_replay" ]]; then
    "$build_dir/bench_leveled_replay" \
        --benchmark_out="$tmp/leveled.json" --benchmark_out_format=json
  fi
  if [[ -x "$build_dir/bench_multi_session" ]]; then
    "$build_dir/bench_multi_session" \
        --benchmark_out="$tmp/multi_session.json" --benchmark_out_format=json
  fi
fi

python3 - "$facet" "$tmp/lincheck.json" "$tmp/detection.json" "$tmp/leveled.json" "$tmp/multi_session.json" "$out" <<'EOF'
import json, sys

mode, lincheck, detection, leveled, multi_session, out = sys.argv[1:7]

def load(path):
    with open(path) as f:
        data = json.load(f)
    return {
        "context": {k: data["context"].get(k)
                    for k in ("date", "host_name", "num_cpus", "mhz_per_cpu",
                              "library_build_type")},
        "benchmarks": data["benchmarks"],
    }

def parallel_scaling_facet(run):
    """Verified-op throughput of the sharded frontier engine by shard count
    (BM_ParallelFrontierScaling), plus speedups vs one shard.  Meaningful
    scaling requires cores >= shards; num_cpus is recorded alongside so
    single-core hosts aren't misread as regressions.  The one construction
    point for the facet, whichever mode recorded it."""
    per_shard = {}
    for b in run["benchmarks"]:
        name = b.get("name", "")
        if (name.startswith("BM_ParallelFrontierScaling/")
                and b.get("run_type") != "aggregate"
                and "items_per_second" in b):
            per_shard[name.split("/")[1]] = b["items_per_second"]
    if not per_shard:
        return None
    base = per_shard.get("1")
    return {
        "workload": "frontier-width-sweep (2^12-wide stack frontier, "
                    "overlapping push/pop stream)",
        "num_cpus": run["context"].get("num_cpus"),
        "items_per_second_by_shards": per_shard,
        "speedup_vs_1_shard": {
            s: (v / base if base else None) for s, v in per_shard.items()
        },
    }

def leveled_replay_facet(run):
    """Rollback-storm throughput of the leveled checker by replay lane count
    (BM_LeveledRollbackStorm: adaptive sharded replay monitors + async
    snapshot lanes vs the sequential discipline at lanes=1), plus the
    snapshot-mode A/B (BM_LeveledSnapshotMode).  Scaling requires
    cores >= lanes; num_cpus is recorded alongside."""
    per_lanes, modes = {}, {}
    for b in run["benchmarks"]:
        name = b.get("name", "")
        if b.get("run_type") == "aggregate" or "items_per_second" not in b:
            continue
        if name.startswith("BM_LeveledRollbackStorm/"):
            per_lanes[name.split("/")[1]] = b["items_per_second"]
        elif name.startswith("BM_LeveledSnapshotMode/"):
            arm = "async-stripes" if name.split("/")[1] == "1" else "inline"
            modes[arm] = b["items_per_second"]
    if not per_lanes:
        return None
    base = per_lanes.get("1")
    return {
        "workload": "rollback storm (88-level pqueue spine, 10 stragglers "
                    "=> 2^10-wide replay frontier, one rollback each)",
        "num_cpus": run["context"].get("num_cpus"),
        "items_per_second_by_lanes": per_lanes,
        "speedup_vs_1_lane": {
            s: (v / base if base else None) for s, v in per_lanes.items()
        },
        "snapshot_mode_items_per_second": modes or None,
    }

def multi_session_facet(run):
    """Aggregate verified-events/sec of the multi-tenant service by
    (sessions, shared-executor lanes) — BM_MultiSessionThroughput — plus the
    single-monitor batched-feed A/B (BM_BatchedFeedAmortization).  Session
    scaling requires cores >= lanes; num_cpus is recorded alongside so
    single-core hosts aren't misread as regressions.  Unstable by design:
    tools/bench_gate.py excludes it from the regression gate until the CI
    bench-scaling job records it on the multi-core runner."""
    per_combo, batch = {}, {}
    for b in run["benchmarks"]:
        name = b.get("name", "")
        if b.get("run_type") == "aggregate" or "items_per_second" not in b:
            continue
        if name.startswith("BM_MultiSessionThroughput/"):
            parts = name.split("/")
            per_combo[f"{parts[1]}x{parts[2]}"] = b["items_per_second"]
        elif name.startswith("BM_BatchedFeedAmortization/"):
            arg = name.split("/")[1]
            arm = "per-event" if arg == "0" else f"batch={arg}"
            batch[arm] = b["items_per_second"]
    if not per_combo:
        return None
    def base_for(combo):
        return per_combo.get(combo.split("x")[0] + "x1")
    return {
        "workload": "N independent linearizable sessions (256 ops each, "
                    "mixed specs) multiplexed over a shared executor; key = "
                    "sessions x lanes",
        "num_cpus": run["context"].get("num_cpus"),
        "events_per_second_by_sessions_x_lanes": per_combo,
        "speedup_vs_1_lane": {
            c: (v / base_for(c) if base_for(c) else None)
            for c, v in per_combo.items()
        },
        "batched_feed_events_per_second": batch or None,
    }

# The single-binary facet modes run one bench alone, so no lincheck.json
# exists to load — handle them before touching the other runs.
if mode == "multi_session":
    facet = multi_session_facet(load(multi_session))
    if facet is None:
        sys.exit("error: no BM_MultiSessionThroughput results in this run")
    try:
        with open(out) as f:
            result = json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        sys.exit(f"error: {out} missing or unreadable; run the full suite first")
    result["multi_session"] = facet
    with open(out, "w") as f:
        json.dump(result, f, indent=1)
    print(f"updated multi_session facet of {out}")
    sys.exit(0)

if mode == "leveled_replay":
    facet = leveled_replay_facet(load(leveled))
    if facet is None:
        sys.exit("error: no BM_LeveledRollbackStorm results in this run")
    try:
        with open(out) as f:
            result = json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        sys.exit(f"error: {out} missing or unreadable; run the full suite first")
    result["leveled_replay"] = facet
    with open(out, "w") as f:
        json.dump(result, f, indent=1)
    print(f"updated leveled_replay facet of {out}")
    sys.exit(0)

lincheck_run = load(lincheck)
scaling = parallel_scaling_facet(lincheck_run)

if mode == "parallel_scaling":
    if scaling is None:
        sys.exit("error: no BM_ParallelFrontierScaling results in this run")
    try:
        with open(out) as f:
            result = json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        sys.exit(f"error: {out} missing or unreadable; run the full suite first")
    result["parallel_scaling"] = scaling
    with open(out, "w") as f:
        json.dump(result, f, indent=1)
    print(f"updated parallel_scaling facet of {out}")
    sys.exit(0)

result = {"bench_lincheck": lincheck_run, "bench_detection": load(detection)}
if scaling is not None:
    result["parallel_scaling"] = scaling
try:
    leveled_facet = leveled_replay_facet(load(leveled))
except FileNotFoundError:
    leveled_facet = None
if leveled_facet is not None:
    result["leveled_replay"] = leveled_facet
try:
    session_facet = multi_session_facet(load(multi_session))
except FileNotFoundError:
    session_facet = None
if session_facet is not None:
    result["multi_session"] = session_facet

# Preserve facets recorded by earlier PRs/other hosts when this run did not
# produce them (baseline_string_key is PR 1's string-key engine baseline;
# leveled_replay/multi_session go missing when their benches weren't built).
try:
    with open(out) as f:
        prev = json.load(f)
    for key in ("baseline_string_key", "leveled_replay", "parallel_scaling",
                "multi_session"):
        if key in prev and key not in result:
            result[key] = prev[key]
except (FileNotFoundError, json.JSONDecodeError):
    pass

with open(out, "w") as f:
    json.dump(result, f, indent=1)
print(f"wrote {out}")
EOF
