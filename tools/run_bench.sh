#!/usr/bin/env bash
# Runs the membership-engine benchmarks (bench_lincheck + bench_detection)
# and folds the results into BENCH_lincheck.json at the repo root, so the
# perf trajectory is tracked PR over PR.
#
# Usage: tools/run_bench.sh [build-dir] \
#            [--facet all|parallel_scaling|leveled_replay|multi_session|frontier_memory|obs_overhead|closure_hot|ingest|enforced|abd_cluster] \
#            [--allow-non-release]
#
# Recorded numbers are only comparable between optimized builds, so the
# script configures/builds the bench binaries itself with
# CMAKE_BUILD_TYPE=Release and refuses to record from any other build type
# unless --allow-non-release is given (which tags every touched facet with
# "non_release_run": true so the gate and readers can discount it).  The
# same gate covers the benchmark *library*: the system libbenchmark is a
# Debian debug build (self-reported library_build_type=debug, unoptimized
# timing loops), so the script probes the binary's reported library build
# type and refuses to record against a non-release library unless
# --allow-non-release is given — configure with
# -DSELIN_BENCHMARK_FROM_SOURCE=ON (network required; CI's bench jobs do)
# to build the library in Release.  Facets recorded over a debug library
# carry "debug_benchmark_library": true; the recorded library_build_type is
# taken from the bench binaries' CMAKE_BUILD_TYPE (the thing being
# measured) and the library's own value is kept as
# benchmark_library_build_type.
#
# --facet parallel_scaling re-runs only BM_ParallelFrontierScaling and
# replaces just the `parallel_scaling` facet of BENCH_lincheck.json, leaving
# every other recorded number untouched.  Use it to re-record the scaling
# facet alone on a multi-core host (the facet is meaningless when
# num_cpus < shards, and re-running the full suite there would overwrite
# the tracked single-host trajectory).  --facet leveled_replay does the same
# for the leveled checker's rollback-storm facet (bench_leveled_replay), and
# --facet multi_session for the multi-tenant service sweep
# (bench_multi_session: sessions x shared-executor lanes, aggregate
# events/sec), and --facet frontier_memory for the op-set footprint facet
# (bench_frontier_memory: peak live configs x mean per-config op-set bytes
# on long ragged histories), and --facet obs_overhead for the observability
# tax facet (bench_obs_overhead: incremental-monitor throughput detached vs
# metrics vs metrics+trace; the ISSUE 7 budget is <= 2% with metrics
# attached), and --facet closure_hot for the closure hot-path facet
# (bench_closure_hot: dup-heavy/dup-light monitor runs with the dedup-probe
# prefetch on and off; raw run shape, gated by tools/bench_gate.py), and
# --facet ingest for the live-ingest facet (bench_ingest: binary wire decode
# vs text parse vs MPSC publish+drain; raw run shape, excluded from the
# gate — see BM_Ingest in tools/bench_gate.py), and --facet enforced for the
# enforcement-port A/B (bench_self_enforced's BM_EnforcedVerifiedOps:
# verified-op throughput of the seed-era sequential discipline vs the ported
# coupled and decoupled engine paths; the facet stores per-mode items/s and
# speedup_vs_seed ratios — the PR 10 acceptance bar is decoupled >= 5x), and
# --facet abd_cluster for the monitored-ABD-cluster sweep (bench_abd_cluster:
# hundreds-to-thousands of logical clients over reliable and lossy/reordered
# simulated links, every op runtime-verified; stores verified-ops/s plus
# protocol-message/drop/retransmit counters per (clients, loss) point).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="$repo_root/BENCH_lincheck.json"

facet="all"
build_dir="$repo_root/build"
allow_non_release=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --facet)
      [[ $# -ge 2 ]] || { echo "error: --facet needs a value" >&2; exit 2; }
      facet="$2"
      shift 2
      ;;
    --allow-non-release)
      allow_non_release=1
      shift
      ;;
    --*)
      echo "error: unknown flag $1" >&2
      exit 2
      ;;
    *)
      build_dir="$1"
      shift
      ;;
  esac
done
case "$facet" in
  all|parallel_scaling|leveled_replay|multi_session|frontier_memory|obs_overhead|closure_hot|ingest|enforced|abd_cluster) ;;
  *) echo "error: unknown facet '$facet' (all | parallel_scaling | leveled_replay | multi_session | frontier_memory | obs_overhead | closure_hot | ingest | enforced | abd_cluster)" >&2; exit 2 ;;
esac

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Release discipline: configure the build dir ourselves when it doesn't
# exist, always (re)build the bench binaries, and refuse to record numbers
# from a non-Release build unless explicitly overridden.
if [[ ! -f "$build_dir/CMakeCache.txt" ]]; then
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
fi
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt")"
if [[ "$build_type" != "Release" ]]; then
  if [[ $allow_non_release -eq 0 ]]; then
    echo "error: $build_dir is CMAKE_BUILD_TYPE='$build_type', not Release;" >&2
    echo "       refusing to record non-comparable numbers" >&2
    echo "       (re-run with --allow-non-release to record them tagged)" >&2
    exit 1
  fi
  echo "WARNING: recording from a '$build_type' build; facets will carry" >&2
  echo "         non_release_run=true and must not be used as a baseline" >&2
fi
cmake --build "$build_dir" -j"$(nproc)"
export SELIN_BENCH_BUILD_TYPE="$build_type"

if [[ ! -x "$build_dir/bench_lincheck" ]]; then
  echo "error: benchmarks not built in $build_dir (cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

# Library half of the Release gate: probe the benchmark library's own build
# type from the context block of a sub-second run (a no-match filter writes
# no output file at all, so the probe runs the smallest lincheck workload).
# The system Debian package is a debug library whose timing loops are
# unoptimized, so recording against it needs the same explicit override as
# a non-Release build of our own code.
"$build_dir/bench_lincheck" \
    --benchmark_filter='^BM_OfflineCheckVsLength/0/16$' \
    --benchmark_min_time=0.001 \
    --benchmark_out="$tmp/probe.json" --benchmark_out_format=json \
    > /dev/null
lib_build_type="$(python3 -c \
    "import json, sys; print(str(json.load(open(sys.argv[1]))['context'].get('library_build_type', 'unknown')).lower())" \
    "$tmp/probe.json")"
export SELIN_BENCH_LIB_BUILD_TYPE="$lib_build_type"
if [[ "$lib_build_type" != "release" ]]; then
  if [[ $allow_non_release -eq 0 ]]; then
    echo "error: the benchmark library is a '$lib_build_type' build;" >&2
    echo "       configure with -DSELIN_BENCHMARK_FROM_SOURCE=ON to build" >&2
    echo "       it in Release (needs network), or re-run with" >&2
    echo "       --allow-non-release to record tagged numbers" >&2
    exit 1
  fi
  echo "WARNING: recording against a '$lib_build_type' benchmark library;" >&2
  echo "         facets will carry debug_benchmark_library=true" >&2
fi

if [[ "$facet" == "parallel_scaling" ]]; then
  "$build_dir/bench_lincheck" \
      --benchmark_filter='BM_ParallelFrontierScaling' \
      --benchmark_out="$tmp/lincheck.json" --benchmark_out_format=json
elif [[ "$facet" == "leveled_replay" ]]; then
  if [[ ! -x "$build_dir/bench_leveled_replay" ]]; then
    echo "error: bench_leveled_replay not built in $build_dir" >&2
    exit 1
  fi
  "$build_dir/bench_leveled_replay" \
      --benchmark_out="$tmp/leveled.json" --benchmark_out_format=json
elif [[ "$facet" == "multi_session" ]]; then
  if [[ ! -x "$build_dir/bench_multi_session" ]]; then
    echo "error: bench_multi_session not built in $build_dir" >&2
    exit 1
  fi
  "$build_dir/bench_multi_session" \
      --benchmark_out="$tmp/multi_session.json" --benchmark_out_format=json
elif [[ "$facet" == "frontier_memory" ]]; then
  if [[ ! -x "$build_dir/bench_frontier_memory" ]]; then
    echo "error: bench_frontier_memory not built in $build_dir" >&2
    exit 1
  fi
  "$build_dir/bench_frontier_memory" \
      --benchmark_out="$tmp/frontier_memory.json" --benchmark_out_format=json
elif [[ "$facet" == "obs_overhead" ]]; then
  if [[ ! -x "$build_dir/bench_obs_overhead" ]]; then
    echo "error: bench_obs_overhead not built in $build_dir" >&2
    exit 1
  fi
  # Repetitions + min-time damp single-run jitter: the facet stores the
  # best (min real_time) repetition per arm so a 2% budget is measurable.
  "$build_dir/bench_obs_overhead" \
      --benchmark_min_time=0.25 --benchmark_repetitions=5 \
      --benchmark_report_aggregates_only=false \
      --benchmark_out="$tmp/obs_overhead.json" --benchmark_out_format=json
elif [[ "$facet" == "closure_hot" ]]; then
  if [[ ! -x "$build_dir/bench_closure_hot" ]]; then
    echo "error: bench_closure_hot not built in $build_dir" >&2
    exit 1
  fi
  "$build_dir/bench_closure_hot" \
      --benchmark_min_time=0.1 --benchmark_repetitions=3 \
      --benchmark_report_aggregates_only=false \
      --benchmark_out="$tmp/closure_hot.json" --benchmark_out_format=json
elif [[ "$facet" == "ingest" ]]; then
  if [[ ! -x "$build_dir/bench_ingest" ]]; then
    echo "error: bench_ingest not built in $build_dir" >&2
    exit 1
  fi
  "$build_dir/bench_ingest" \
      --benchmark_min_time=0.1 --benchmark_repetitions=3 \
      --benchmark_report_aggregates_only=false \
      --benchmark_out="$tmp/ingest.json" --benchmark_out_format=json
elif [[ "$facet" == "enforced" ]]; then
  if [[ ! -x "$build_dir/bench_self_enforced" ]]; then
    echo "error: bench_self_enforced not built in $build_dir" >&2
    exit 1
  fi
  # Fixed-iteration A/B: repetitions damp scheduler jitter and the facet
  # stores the best repetition per mode, so the speedup ratio is stable
  # even on a loaded host.
  "$build_dir/bench_self_enforced" \
      --benchmark_filter='BM_EnforcedVerifiedOps' \
      --benchmark_repetitions=3 \
      --benchmark_report_aggregates_only=false \
      --benchmark_out="$tmp/enforced.json" --benchmark_out_format=json
elif [[ "$facet" == "abd_cluster" ]]; then
  if [[ ! -x "$build_dir/bench_abd_cluster" ]]; then
    echo "error: bench_abd_cluster not built in $build_dir" >&2
    exit 1
  fi
  "$build_dir/bench_abd_cluster" \
      --benchmark_out="$tmp/abd_cluster.json" --benchmark_out_format=json
else
  if [[ ! -x "$build_dir/bench_detection" ]]; then
    echo "error: benchmarks not built in $build_dir (cmake -B build -S . && cmake --build build -j)" >&2
    exit 1
  fi
  "$build_dir/bench_lincheck" \
      --benchmark_out="$tmp/lincheck.json" --benchmark_out_format=json
  "$build_dir/bench_detection" \
      --benchmark_out="$tmp/detection.json" --benchmark_out_format=json
  if [[ -x "$build_dir/bench_leveled_replay" ]]; then
    "$build_dir/bench_leveled_replay" \
        --benchmark_out="$tmp/leveled.json" --benchmark_out_format=json
  fi
  if [[ -x "$build_dir/bench_multi_session" ]]; then
    "$build_dir/bench_multi_session" \
        --benchmark_out="$tmp/multi_session.json" --benchmark_out_format=json
  fi
  if [[ -x "$build_dir/bench_frontier_memory" ]]; then
    "$build_dir/bench_frontier_memory" \
        --benchmark_out="$tmp/frontier_memory.json" --benchmark_out_format=json
  fi
  if [[ -x "$build_dir/bench_obs_overhead" ]]; then
    "$build_dir/bench_obs_overhead" \
        --benchmark_min_time=0.25 --benchmark_repetitions=5 \
        --benchmark_report_aggregates_only=false \
        --benchmark_out="$tmp/obs_overhead.json" --benchmark_out_format=json
  fi
  if [[ -x "$build_dir/bench_closure_hot" ]]; then
    "$build_dir/bench_closure_hot" \
        --benchmark_min_time=0.1 --benchmark_repetitions=3 \
        --benchmark_report_aggregates_only=false \
        --benchmark_out="$tmp/closure_hot.json" --benchmark_out_format=json
  fi
  if [[ -x "$build_dir/bench_ingest" ]]; then
    "$build_dir/bench_ingest" \
        --benchmark_min_time=0.1 --benchmark_repetitions=3 \
        --benchmark_report_aggregates_only=false \
        --benchmark_out="$tmp/ingest.json" --benchmark_out_format=json
  fi
  if [[ -x "$build_dir/bench_self_enforced" ]]; then
    "$build_dir/bench_self_enforced" \
        --benchmark_filter='BM_EnforcedVerifiedOps' \
        --benchmark_repetitions=3 \
        --benchmark_report_aggregates_only=false \
        --benchmark_out="$tmp/enforced.json" --benchmark_out_format=json
  fi
  if [[ -x "$build_dir/bench_abd_cluster" ]]; then
    "$build_dir/bench_abd_cluster" \
        --benchmark_out="$tmp/abd_cluster.json" --benchmark_out_format=json
  fi
fi

python3 - "$facet" "$tmp/lincheck.json" "$tmp/detection.json" "$tmp/leveled.json" "$tmp/multi_session.json" "$tmp/frontier_memory.json" "$tmp/obs_overhead.json" "$tmp/closure_hot.json" "$tmp/ingest.json" "$tmp/enforced.json" "$tmp/abd_cluster.json" "$out" <<'EOF'
import json, os, sys

(mode, lincheck, detection, leveled, multi_session, frontier_memory,
 obs_overhead, closure_hot, ingest, enforced, abd_cluster,
 out) = sys.argv[1:13]

# The build type of the *bench binaries* (what run_bench.sh just built and
# measured); the benchmark library's own build type is recorded separately
# because the Debian package is a debug build and says so forever.
BUILD_TYPE = os.environ.get("SELIN_BENCH_BUILD_TYPE", "unknown").lower()
LIB_BUILD_TYPE = os.environ.get("SELIN_BENCH_LIB_BUILD_TYPE",
                                "unknown").lower()

def tag_non_release(d):
    if BUILD_TYPE != "release":
        d["non_release_run"] = True
    if LIB_BUILD_TYPE != "release":
        d["debug_benchmark_library"] = True
    return d

def load(path):
    with open(path) as f:
        data = json.load(f)
    ctx = {k: data["context"].get(k)
           for k in ("date", "host_name", "num_cpus", "mhz_per_cpu")}
    ctx["library_build_type"] = BUILD_TYPE
    ctx["benchmark_library_build_type"] = \
        data["context"].get("library_build_type")
    return tag_non_release({"context": ctx, "benchmarks": data["benchmarks"]})

def parallel_scaling_facet(run):
    """Verified-op throughput of the sharded frontier engine by shard count
    (BM_ParallelFrontierScaling), plus speedups vs one shard.  Meaningful
    scaling requires cores >= shards; num_cpus is recorded alongside so
    single-core hosts aren't misread as regressions.  The one construction
    point for the facet, whichever mode recorded it."""
    per_shard = {}
    for b in run["benchmarks"]:
        name = b.get("name", "")
        if (name.startswith("BM_ParallelFrontierScaling/")
                and b.get("run_type") != "aggregate"
                and "items_per_second" in b):
            per_shard[name.split("/")[1]] = b["items_per_second"]
    if not per_shard:
        return None
    base = per_shard.get("1")
    return {
        "workload": "frontier-width-sweep (2^12-wide stack frontier, "
                    "overlapping push/pop stream)",
        "num_cpus": run["context"].get("num_cpus"),
        "items_per_second_by_shards": per_shard,
        "speedup_vs_1_shard": {
            s: (v / base if base else None) for s, v in per_shard.items()
        },
    }

def leveled_replay_facet(run):
    """Rollback-storm throughput of the leveled checker by replay lane count
    (BM_LeveledRollbackStorm: adaptive sharded replay monitors + async
    snapshot lanes vs the sequential discipline at lanes=1), plus the
    snapshot-mode A/B (BM_LeveledSnapshotMode).  Scaling requires
    cores >= lanes; num_cpus is recorded alongside."""
    per_lanes, modes = {}, {}
    for b in run["benchmarks"]:
        name = b.get("name", "")
        if b.get("run_type") == "aggregate" or "items_per_second" not in b:
            continue
        if name.startswith("BM_LeveledRollbackStorm/"):
            per_lanes[name.split("/")[1]] = b["items_per_second"]
        elif name.startswith("BM_LeveledSnapshotMode/"):
            arm = "async-stripes" if name.split("/")[1] == "1" else "inline"
            modes[arm] = b["items_per_second"]
    if not per_lanes:
        return None
    base = per_lanes.get("1")
    return {
        "workload": "rollback storm (88-level pqueue spine, 10 stragglers "
                    "=> 2^10-wide replay frontier, one rollback each)",
        "num_cpus": run["context"].get("num_cpus"),
        "items_per_second_by_lanes": per_lanes,
        "speedup_vs_1_lane": {
            s: (v / base if base else None) for s, v in per_lanes.items()
        },
        "snapshot_mode_items_per_second": modes or None,
    }

def multi_session_facet(run):
    """Aggregate verified-events/sec of the multi-tenant service by
    (sessions, shared-executor lanes) — BM_MultiSessionThroughput — plus the
    single-monitor batched-feed A/B (BM_BatchedFeedAmortization).  Session
    scaling requires cores >= lanes; num_cpus is recorded alongside so
    single-core hosts aren't misread as regressions.  Unstable by design:
    tools/bench_gate.py excludes it from the regression gate until the CI
    bench-scaling job records it on the multi-core runner."""
    per_combo, batch = {}, {}
    for b in run["benchmarks"]:
        name = b.get("name", "")
        if b.get("run_type") == "aggregate" or "items_per_second" not in b:
            continue
        if name.startswith("BM_MultiSessionThroughput/"):
            parts = name.split("/")
            per_combo[f"{parts[1]}x{parts[2]}"] = b["items_per_second"]
        elif name.startswith("BM_BatchedFeedAmortization/"):
            arg = name.split("/")[1]
            arm = "per-event" if arg == "0" else f"batch={arg}"
            batch[arm] = b["items_per_second"]
    if not per_combo:
        return None
    def base_for(combo):
        return per_combo.get(combo.split("x")[0] + "x1")
    return {
        "workload": "N independent linearizable sessions (256 ops each, "
                    "mixed specs) multiplexed over a shared executor; key = "
                    "sessions x lanes",
        "num_cpus": run["context"].get("num_cpus"),
        "events_per_second_by_sessions_x_lanes": per_combo,
        "speedup_vs_1_lane": {
            c: (v / base_for(c) if base_for(c) else None)
            for c, v in per_combo.items()
        },
        "batched_feed_events_per_second": batch or None,
    }

def frontier_memory_facet(run):
    """Op-set footprint of the frontier engine on long ragged histories
    (bench_frontier_memory): peak live configs, mean per-config op-set bytes
    under the interval-run representation, the bytes the flat SmallVec
    representation would occupy for the same sets, and their ratio
    (compression_x).  Single-threaded and deterministic, but excluded from
    the regression gate (tools/bench_gate.py) until two recordings exist."""
    rows = {}
    for b in run["benchmarks"]:
        name = b.get("name", "")
        if b.get("run_type") == "aggregate":
            continue
        if not name.startswith("BM_FrontierMemory"):
            continue
        keep = ("peak_configs", "opset_bytes_per_config",
                "smallvec_bytes_per_config", "compression_x",
                "peak_footprint_bytes", "opset_elems_per_config")
        rows[name] = {k: b[k] for k in keep if k in b}
    if not rows:
        return None
    return tag_non_release({
        "workload": "long ragged histories (>= 2^14 ops; straggler cohorts "
                    "keep wide pending windows alive): peak live configs x "
                    "mean per-config op-set bytes",
        "library_build_type": BUILD_TYPE,
        "per_workload": rows,
    })

def obs_overhead_facet(run):
    """Observability tax on the incremental monitor's feed hot path
    (bench_obs_overhead — BM_ObsOverhead/0 detached, /1 metrics attached,
    /2 metrics + RingRecorder trace).  Stores each arm's best-repetition
    throughput and the relative overhead vs the detached arm; the ISSUE 7
    budget is overhead_pct.metrics <= 2.  Single-threaded and
    deterministic, but excluded from the wall-time regression gate
    (tools/bench_gate.py): the quantity gated here is the *ratio* between
    arms, which this facet records directly."""
    arms = {"0": "detached", "1": "metrics", "2": "metrics+trace"}
    per_arm = {}
    for b in run["benchmarks"]:
        name = b.get("name", "")
        if (not name.startswith("BM_ObsOverhead/")
                or b.get("run_type") == "aggregate"
                or "items_per_second" not in b):
            continue
        arm = arms.get(name.split("/")[1])
        if arm is None:
            continue
        # min real_time across repetitions == max items_per_second
        cur = per_arm.get(arm)
        if cur is None or b["items_per_second"] > cur:
            per_arm[arm] = b["items_per_second"]
    if "detached" not in per_arm:
        return None
    base = per_arm["detached"]
    return tag_non_release({
        "workload": "incremental queue monitor, 512-op linearizable "
                    "history (concurrency window 2), one feed per "
                    "iteration; best of 5 repetitions per arm",
        "events_per_second_by_arm": per_arm,
        "overhead_pct_vs_detached": {
            a: (base / v - 1.0) * 100.0
            for a, v in per_arm.items() if a != "detached"
        },
        "budget_pct": 2.0,
    })

def enforced_facet(run):
    """The enforcement-port A/B (bench_self_enforced's
    BM_EnforcedVerifiedOps): verified-op throughput of the seed-era
    sequential enforcement discipline (mode 0) vs the ported coupled engine
    path (mode 1) and the batched decoupled deployment (mode 2), one driver
    thread, identical op stream.  Stores the best repetition per mode plus
    speedup_vs_seed ratios — the PR 10 acceptance bar is
    ported-decoupled >= 5.  Excluded from the wall-time gate
    (tools/bench_gate.py): the gated quantity is the ratio between arms,
    recorded here directly."""
    arms = {"0": "seed-coupled", "1": "ported-coupled", "2": "ported-decoupled"}
    per_arm = {}
    for b in run["benchmarks"]:
        name = b.get("name", "")
        if (not name.startswith("BM_EnforcedVerifiedOps/")
                or b.get("run_type") == "aggregate"
                or "items_per_second" not in b):
            continue
        arm = arms.get(name.split("/")[1])
        if arm is None:
            continue
        cur = per_arm.get(arm)
        if cur is None or b["items_per_second"] > cur:
            per_arm[arm] = b["items_per_second"]
    if "seed-coupled" not in per_arm:
        return None
    base = per_arm["seed-coupled"]
    return tag_non_release({
        "workload": "16 process slots, single driver, random queue ops; "
                    "every op verified (decoupled arm: one shared verifier "
                    "pass per 256 applies); best of 3 repetitions per arm",
        "verified_ops_per_second_by_arm": per_arm,
        "speedup_vs_seed": {
            a: (v / base if base else None)
            for a, v in per_arm.items() if a != "seed-coupled"
        },
    })

def abd_cluster_facet(run):
    """The monitored-ABD-cluster sweep (bench_abd_cluster): logical clients
    multiplexed over 4 driver threads against a 3-replica simulated ABD
    register cluster, every operation runtime-verified through per-key
    MonitorService sessions; reliable and lossy+reordered link arms.  Key =
    clients@dropN (permille).  all_ok must be 1.0 everywhere — the cluster
    is correct, loss only widens op intervals."""
    rows = {}
    for b in run["benchmarks"]:
        name = b.get("name", "")
        if (not name.startswith("BM_AbdClusterVerifiedOps/")
                or b.get("run_type") == "aggregate"
                or "items_per_second" not in b):
            continue
        parts = name.split("/")
        key = f"{parts[1]}@drop{parts[2]}"
        row = {"verified_ops_per_second": b["items_per_second"]}
        for k in ("msgs_per_op", "dropped", "retransmits", "events_fed",
                  "all_ok"):
            if k in b:
                row[k] = b[k]
        rows[key] = row
    if not rows:
        return None
    return tag_non_release({
        "workload": "3-replica simulated ABD cluster, 4 keys, 4 driver "
                    "threads x N logical clients, 50/50 read/write; lossy "
                    "arms drop 2% of messages and deliver reordered, "
                    "clients retransmit; key = clients@drop_permille",
        "num_cpus": run["context"].get("num_cpus"),
        "per_arm": rows,
    })

# The single-binary facet modes run one bench alone, so no lincheck.json
# exists to load — handle them before touching the other runs.
if mode == "closure_hot":
    # Stored run-shaped (raw context + benchmarks), like bench_lincheck:
    # tools/bench_gate.py gates on its real_time rows via stable_rows().
    facet = load(closure_hot)
    if not facet.get("benchmarks"):
        sys.exit("error: no BM_ClosureHot results in this run")
    try:
        with open(out) as f:
            result = json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        sys.exit(f"error: {out} missing or unreadable; run the full suite first")
    result["closure_hot"] = facet
    with open(out, "w") as f:
        json.dump(result, f, indent=1)
    print(f"updated closure_hot facet of {out}")
    sys.exit(0)

if mode == "ingest":
    # Run-shaped like closure_hot; excluded from the wall-time gate
    # (BM_Ingest in tools/bench_gate.py UNSTABLE_PREFIXES) — the facet
    # tracks the wire-vs-text ratio, not absolute times.
    facet = load(ingest)
    if not facet.get("benchmarks"):
        sys.exit("error: no BM_Ingest results in this run")
    try:
        with open(out) as f:
            result = json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        sys.exit(f"error: {out} missing or unreadable; run the full suite first")
    result["ingest"] = facet
    with open(out, "w") as f:
        json.dump(result, f, indent=1)
    print(f"updated ingest facet of {out}")
    sys.exit(0)

if mode == "enforced":
    with open(enforced) as f:
        facet = enforced_facet(json.load(f))
    if facet is None:
        sys.exit("error: no BM_EnforcedVerifiedOps results in this run")
    try:
        with open(out) as f:
            result = json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        sys.exit(f"error: {out} missing or unreadable; run the full suite first")
    result["enforced"] = facet
    with open(out, "w") as f:
        json.dump(result, f, indent=1)
    print(f"updated enforced facet of {out}")
    sys.exit(0)

if mode == "abd_cluster":
    with open(abd_cluster) as f:
        facet = abd_cluster_facet(json.load(f))
    if facet is None:
        sys.exit("error: no BM_AbdClusterVerifiedOps results in this run")
    try:
        with open(out) as f:
            result = json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        sys.exit(f"error: {out} missing or unreadable; run the full suite first")
    result["abd_cluster"] = facet
    with open(out, "w") as f:
        json.dump(result, f, indent=1)
    print(f"updated abd_cluster facet of {out}")
    sys.exit(0)

if mode == "obs_overhead":
    with open(obs_overhead) as f:
        facet = obs_overhead_facet(json.load(f))
    if facet is None:
        sys.exit("error: no BM_ObsOverhead results in this run")
    try:
        with open(out) as f:
            result = json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        sys.exit(f"error: {out} missing or unreadable; run the full suite first")
    result["obs_overhead"] = facet
    with open(out, "w") as f:
        json.dump(result, f, indent=1)
    print(f"updated obs_overhead facet of {out}")
    sys.exit(0)

if mode == "frontier_memory":
    with open(frontier_memory) as f:
        facet = frontier_memory_facet(json.load(f))
    if facet is None:
        sys.exit("error: no BM_FrontierMemory results in this run")
    try:
        with open(out) as f:
            result = json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        sys.exit(f"error: {out} missing or unreadable; run the full suite first")
    result["frontier_memory"] = facet
    with open(out, "w") as f:
        json.dump(result, f, indent=1)
    print(f"updated frontier_memory facet of {out}")
    sys.exit(0)

if mode == "multi_session":
    facet = multi_session_facet(load(multi_session))
    if facet is None:
        sys.exit("error: no BM_MultiSessionThroughput results in this run")
    try:
        with open(out) as f:
            result = json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        sys.exit(f"error: {out} missing or unreadable; run the full suite first")
    result["multi_session"] = facet
    with open(out, "w") as f:
        json.dump(result, f, indent=1)
    print(f"updated multi_session facet of {out}")
    sys.exit(0)

if mode == "leveled_replay":
    facet = leveled_replay_facet(load(leveled))
    if facet is None:
        sys.exit("error: no BM_LeveledRollbackStorm results in this run")
    try:
        with open(out) as f:
            result = json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        sys.exit(f"error: {out} missing or unreadable; run the full suite first")
    result["leveled_replay"] = facet
    with open(out, "w") as f:
        json.dump(result, f, indent=1)
    print(f"updated leveled_replay facet of {out}")
    sys.exit(0)

lincheck_run = load(lincheck)
scaling = parallel_scaling_facet(lincheck_run)

if mode == "parallel_scaling":
    if scaling is None:
        sys.exit("error: no BM_ParallelFrontierScaling results in this run")
    try:
        with open(out) as f:
            result = json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        sys.exit(f"error: {out} missing or unreadable; run the full suite first")
    result["parallel_scaling"] = scaling
    with open(out, "w") as f:
        json.dump(result, f, indent=1)
    print(f"updated parallel_scaling facet of {out}")
    sys.exit(0)

result = {"bench_lincheck": lincheck_run, "bench_detection": load(detection)}
if scaling is not None:
    result["parallel_scaling"] = scaling
try:
    leveled_facet = leveled_replay_facet(load(leveled))
except FileNotFoundError:
    leveled_facet = None
if leveled_facet is not None:
    result["leveled_replay"] = leveled_facet
try:
    session_facet = multi_session_facet(load(multi_session))
except FileNotFoundError:
    session_facet = None
if session_facet is not None:
    result["multi_session"] = session_facet
try:
    with open(frontier_memory) as f:
        memory_facet = frontier_memory_facet(json.load(f))
except FileNotFoundError:
    memory_facet = None
if memory_facet is not None:
    result["frontier_memory"] = memory_facet
try:
    with open(obs_overhead) as f:
        obs_facet = obs_overhead_facet(json.load(f))
except FileNotFoundError:
    obs_facet = None
if obs_facet is not None:
    result["obs_overhead"] = obs_facet
try:
    closure_facet = load(closure_hot)
except FileNotFoundError:
    closure_facet = None
if closure_facet is not None and closure_facet.get("benchmarks"):
    result["closure_hot"] = closure_facet
try:
    ingest_facet = load(ingest)
except FileNotFoundError:
    ingest_facet = None
if ingest_facet is not None and ingest_facet.get("benchmarks"):
    result["ingest"] = ingest_facet
try:
    with open(enforced) as f:
        enforced_data = enforced_facet(json.load(f))
except FileNotFoundError:
    enforced_data = None
if enforced_data is not None:
    result["enforced"] = enforced_data
try:
    with open(abd_cluster) as f:
        abd_facet = abd_cluster_facet(json.load(f))
except FileNotFoundError:
    abd_facet = None
if abd_facet is not None:
    result["abd_cluster"] = abd_facet

# Preserve facets recorded by earlier PRs/other hosts when this run did not
# produce them (baseline_string_key is PR 1's string-key engine baseline;
# leveled_replay/multi_session go missing when their benches weren't built).
try:
    with open(out) as f:
        prev = json.load(f)
    for key in ("baseline_string_key", "leveled_replay", "parallel_scaling",
                "multi_session", "frontier_memory", "obs_overhead",
                "closure_hot", "ingest", "enforced", "abd_cluster"):
        if key in prev and key not in result:
            result[key] = prev[key]
except (FileNotFoundError, json.JSONDecodeError):
    pass

with open(out, "w") as f:
    json.dump(result, f, indent=1)
print(f"wrote {out}")
EOF
