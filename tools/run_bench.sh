#!/usr/bin/env bash
# Runs the membership-engine benchmarks (bench_lincheck + bench_detection)
# and folds the results into BENCH_lincheck.json at the repo root, so the
# perf trajectory is tracked PR over PR.
#
# Usage: tools/run_bench.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out="$repo_root/BENCH_lincheck.json"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

if [[ ! -x "$build_dir/bench_lincheck" || ! -x "$build_dir/bench_detection" ]]; then
  echo "error: benchmarks not built in $build_dir (cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

"$build_dir/bench_lincheck" \
    --benchmark_out="$tmp/lincheck.json" --benchmark_out_format=json
"$build_dir/bench_detection" \
    --benchmark_out="$tmp/detection.json" --benchmark_out_format=json

python3 - "$tmp/lincheck.json" "$tmp/detection.json" "$out" <<'EOF'
import json, sys

lincheck, detection, out = sys.argv[1], sys.argv[2], sys.argv[3]

def load(path):
    with open(path) as f:
        data = json.load(f)
    return {
        "context": {k: data["context"].get(k)
                    for k in ("date", "host_name", "num_cpus", "mhz_per_cpu",
                              "library_build_type")},
        "benchmarks": data["benchmarks"],
    }

result = {"bench_lincheck": load(lincheck), "bench_detection": load(detection)}

# parallel_scaling facet: verified-op throughput of the sharded frontier
# engine by shard count (BM_ParallelFrontierScaling), plus speedups vs one
# shard.  Meaningful scaling requires cores >= shards; num_cpus is recorded
# alongside so single-core hosts aren't misread as regressions.
per_shard = {}
for b in result["bench_lincheck"]["benchmarks"]:
    name = b.get("name", "")
    if name.startswith("BM_ParallelFrontierScaling/") and b.get("run_type") != "aggregate":
        shards = name.split("/")[1]
        if "items_per_second" in b:
            per_shard[shards] = b["items_per_second"]
if per_shard:
    base = per_shard.get("1")
    result["parallel_scaling"] = {
        "workload": "frontier-width-sweep (2^12-wide stack frontier, "
                    "overlapping push/pop stream)",
        "num_cpus": result["bench_lincheck"]["context"].get("num_cpus"),
        "items_per_second_by_shards": per_shard,
        "speedup_vs_1_shard": {
            s: (v / base if base else None) for s, v in per_shard.items()
        },
    }

# Preserve the recorded baseline (string-key engine) if present, so the
# speedup trajectory stays visible.
try:
    with open(out) as f:
        prev = json.load(f)
    if "baseline_string_key" in prev:
        result["baseline_string_key"] = prev["baseline_string_key"]
except (FileNotFoundError, json.JSONDecodeError):
    pass

with open(out, "w") as f:
    json.dump(result, f, indent=1)
print(f"wrote {out}")
EOF
