// selin_ingestd — live event-ingest daemon.
//
//   selin_ingestd [--uds <path>] [--tcp <port>] [--host <addr>]
//                 [--lanes N] [--batch-limit N] [--inbox-capacity N]
//                 [--max-configs N] [--session-threads N|auto]
//                 [--max-sessions N] [--idle-timeout-ms N] [--no-observe]
//
// Serves the binary wire protocol (src/selin/net/wire.hpp) over a Unix-
// domain socket and/or TCP, multiplexing every connection's event stream
// into one service::MonitorService.  The same listeners answer HTTP-ish
// plaintext GETs (/stats, /metrics, /metrics.json) for scrapers.
//
// At least one of --uds / --tcp is required.  --tcp 0 binds an ephemeral
// port.  On successful startup the daemon prints one READY line per
// listener to stdout and flushes:
//
//   READY uds=<path>
//   READY tcp=<port>
//
// so harnesses can wait for the socket (and learn the ephemeral port)
// without polling.  SIGINT/SIGTERM stop the daemon gracefully; it prints
// one final `STATS <json>` line (the /stats document) and exits 0.
//
// Exit codes: 0 = clean shutdown, 2 = usage error, 3 = startup failure
// (bind/listen).
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <unistd.h>

#include "selin/engine/stats.hpp"
#include "selin/net/ingest_server.hpp"

namespace {

int usage(int code) {
  (code == 0 ? std::cout : std::cerr)
      << "usage: selin_ingestd [--uds <path>] [--tcp <port>] [--host <addr>]"
         " [--lanes N] [--batch-limit N] [--inbox-capacity N]"
         " [--max-configs N] [--session-threads N|auto] [--max-sessions N]"
         " [--idle-timeout-ms N] [--no-observe]\n"
         "at least one of --uds / --tcp required; --tcp 0 = ephemeral port\n";
  return code;
}

// The running server, for the async-signal-safe stop path.
selin::net::IngestServer* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) {
    const char q = 'q';
    [[maybe_unused]] ssize_t n = ::write(g_server->wake_fd(), &q, 1);
  }
}

bool parse_size(const char* s, size_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = static_cast<size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  selin::net::IngestOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--uds") {
      const char* v = need_value();
      if (v == nullptr) return usage(2);
      opts.uds_path = v;
    } else if (arg == "--tcp") {
      const char* v = need_value();
      size_t port;
      if (v == nullptr || !parse_size(v, &port) || port > 65535) {
        return usage(2);
      }
      opts.tcp_port = static_cast<int>(port);
    } else if (arg == "--host") {
      const char* v = need_value();
      if (v == nullptr) return usage(2);
      opts.tcp_host = v;
    } else if (arg == "--lanes") {
      const char* v = need_value();
      if (v == nullptr || !parse_size(v, &opts.lanes)) return usage(2);
    } else if (arg == "--batch-limit") {
      const char* v = need_value();
      if (v == nullptr || !parse_size(v, &opts.batch_limit) ||
          opts.batch_limit == 0) {
        return usage(2);
      }
    } else if (arg == "--inbox-capacity") {
      const char* v = need_value();
      if (v == nullptr || !parse_size(v, &opts.inbox_capacity) ||
          opts.inbox_capacity == 0) {
        return usage(2);
      }
    } else if (arg == "--max-configs") {
      const char* v = need_value();
      if (v == nullptr || !parse_size(v, &opts.max_configs)) return usage(2);
    } else if (arg == "--session-threads") {
      const char* v = need_value();
      if (v == nullptr) return usage(2);
      if (std::strcmp(v, "auto") == 0) {
        opts.session_threads = selin::engine::kAutoThreads;
      } else if (!parse_size(v, &opts.session_threads) ||
                 opts.session_threads == 0) {
        return usage(2);
      }
    } else if (arg == "--max-sessions") {
      const char* v = need_value();
      if (v == nullptr || !parse_size(v, &opts.max_sessions)) return usage(2);
    } else if (arg == "--idle-timeout-ms") {
      const char* v = need_value();
      size_t ms;
      if (v == nullptr || !parse_size(v, &ms)) return usage(2);
      opts.idle_timeout_ms = ms;
    } else if (arg == "--no-observe") {
      opts.observe = false;
    } else {
      std::cerr << "selin_ingestd: unknown flag: " << arg << "\n";
      return usage(2);
    }
  }
  if (opts.uds_path.empty() && opts.tcp_port < 0) return usage(2);

  selin::net::IngestServer server(std::move(opts));
  std::string err;
  if (!server.start(&err)) {
    std::cerr << "selin_ingestd: " << err << "\n";
    return 3;
  }
  g_server = &server;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  if (!server.uds_path().empty()) {
    std::cout << "READY uds=" << server.uds_path() << "\n";
  }
  if (server.tcp_port() >= 0) {
    std::cout << "READY tcp=" << server.tcp_port() << "\n";
  }
  std::cout.flush();

  server.run();

  std::cout << "STATS " << server.stats_json() << "\n";
  std::cout.flush();
  g_server = nullptr;
  return 0;
}
