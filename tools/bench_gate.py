#!/usr/bin/env python3
"""Bench-regression gate: rerun the stable membership-engine benchmarks and
fail on a >25% slowdown against the checked-in BENCH_lincheck.json baseline.

Usage:
  tools/bench_gate.py [--build-dir build] [--baseline BENCH_lincheck.json]
                      [--tolerance 0.25] [--min-time 0.1]

What "stable" means here: the single-threaded bench_lincheck workloads
whose cost is a deterministic function of the engine — everything except
the parallel/adaptive sweeps (BM_ParallelFrontierScaling,
BM_AdaptiveWidthSwing) whose timings depend on the host's core count, and
except run_type=aggregate rows.  bench_detection stays out of the gate
entirely: its workloads drive real producer/checker threads, and measured
run-to-run swings of 1.5-3x on shared hosts would make any threshold either
blind or flaky (the BENCH_lincheck.json trajectory still tracks them).

Cross-host normalization: the checked-in baseline was recorded on one
machine and the gate usually runs on another (a CI runner), so raw
time-per-time comparison would gate on hardware, not code.  The gate
instead compares each benchmark's slowdown ratio to the *median* slowdown
ratio across all stable benchmarks — a pure host-speed difference shifts
every ratio equally and cancels, while a genuine regression in one code
path sticks out of the distribution.  On the recording host the median is
~1 and the gate degenerates to the plain 25% rule.  A uniform slowdown of
*everything* (which the median absorbs) is the one shape this cannot see;
the tracked BENCH_lincheck.json trajectory covers that case.

Flake damping: each benchmark is the min of --repetitions in-process
repeats, and a row over the limit is re-measured --retries more times in a
fresh process, keeping its best time — a transient host-throttling phase
clears on retry, a genuine code regression reproduces every time.

Exit codes: 0 = pass, 1 = regression(s) past tolerance, 2 = usage/setup
error (missing binaries, unreadable baseline, no overlapping benchmarks).
"""

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile

RUNS = {
    "bench_lincheck": "bench_lincheck",
    # Raw-run facet recorded by `tools/run_bench.sh --facet closure_hot`:
    # single-threaded monitor feeds whose cost is a deterministic function
    # of the closure hot path (dup-heavy/dup-light x prefetch on/off), so
    # its rows gate the same way bench_lincheck's do.
    "closure_hot": "bench_closure_hot",
}

UNSTABLE_PREFIXES = (
    "BM_ParallelFrontierScaling",  # meaningless when cores < shards
    "BM_AdaptiveWidthSwing",       # mode mix depends on hardware lanes
    # The multi_session facet (bench_multi_session: BM_MultiSessionThroughput
    # sessions x lanes sweep) is excluded the same way: cross-session scaling
    # is a property of the host's core count, so it stays out of the gate
    # until the CI bench-scaling job records it on the multi-core runner.
    # It lives in its own binary, which the gate never runs; listed here so
    # adding it to RUNS by accident cannot silently gate on it.
    "BM_MultiSessionThroughput",
    # The frontier_memory facet gates on its byte counters, not wall time;
    # unstable until two recordings exist (see tools/run_bench.sh).
    "BM_FrontierMemory",
    # The obs_overhead facet gates on the ratio *between* its arms (metrics
    # attached vs detached, recorded directly by tools/run_bench.sh
    # --facet obs_overhead), not on absolute wall time.  Lives in its own
    # binary, which the gate never runs; listed so adding it to RUNS by
    # accident cannot silently gate on it.
    "BM_ObsOverhead",
    # The ingest facet (bench_ingest: wire decode vs text parse vs MPSC
    # publish+drain, recorded by tools/run_bench.sh --facet ingest) tracks
    # the ratio between its arms; the absolute times ride the host's
    # allocator and cache sizes.  Lives in its own binary, which the gate
    # never runs; listed so adding it to RUNS by accident cannot silently
    # gate on it.
    "BM_Ingest",
    # The enforced facet (bench_self_enforced: BM_EnforcedVerifiedOps,
    # recorded by tools/run_bench.sh --facet enforced) gates on the
    # speedup ratio between its seed/ported arms, recorded directly in the
    # facet; absolute verified-op times ride the host.  Its siblings in
    # bench_decoupled/bench_verifier sweep the same ported knobs and are
    # excluded for the same reason.  All live in their own binaries, which
    # the gate never runs; listed so adding them to RUNS by accident cannot
    # silently gate on them.
    "BM_EnforcedVerifiedOps",
    "BM_VerifierBatchAmortization",
    "BM_VerifierThroughputPorted",
    # The abd_cluster facet (bench_abd_cluster: simulated lossy/reordered
    # links, retransmission timers) is schedule-dependent by construction —
    # the facet tracks verified-ops/s and protocol-message counters, and
    # its correctness bar is all_ok, not wall time.
    "BM_AbdCluster",
)


def stable_rows(run):
    """name -> real_time for the host-independent benchmarks of one run.
    Repeated rows (--benchmark_repetitions) collapse to their minimum — the
    noise-robust statistic for a shared CI runner."""
    rows = {}
    for b in run.get("benchmarks", []):
        name = b.get("name", "")
        if b.get("run_type") == "aggregate":
            continue
        if name.startswith(UNSTABLE_PREFIXES):
            continue
        if "real_time" not in b:
            continue
        t = float(b["real_time"])
        rows[name] = min(rows.get(name, t), t)
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--baseline", default="BENCH_lincheck.json")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed slowdown past the median ratio (0.25 = 25%%)")
    ap.add_argument("--min-time", default="0.1",
                    help="--benchmark_min_time per benchmark (seconds)")
    ap.add_argument("--repetitions", type=int, default=3,
                    help="repetitions per benchmark; the gate takes the min")
    ap.add_argument("--retries", type=int, default=2,
                    help="fresh-process re-measurements a failing row gets")
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_gate: cannot read baseline {args.baseline}: {e}",
              file=sys.stderr)
        return 2

    failures = []
    compared = 0
    for key, binary in RUNS.items():
        if key not in baseline:
            print(f"bench_gate: baseline has no '{key}' facet; skipping")
            continue
        base_rows = stable_rows(baseline[key])
        if not base_rows:
            print(f"bench_gate: no stable baseline rows under '{key}'")
            continue
        path = os.path.join(args.build_dir, binary)
        if not os.access(path, os.X_OK):
            print(f"bench_gate: {path} not built", file=sys.stderr)
            return 2

        def measure(names):
            bench_filter = "|".join(f"^{n}$" for n in names)
            with tempfile.NamedTemporaryFile(suffix=".json") as out:
                cmd = [
                    path,
                    f"--benchmark_filter={bench_filter}",
                    f"--benchmark_min_time={args.min_time}",
                    f"--benchmark_repetitions={args.repetitions}",
                    "--benchmark_report_aggregates_only=false",
                    f"--benchmark_out={out.name}",
                    "--benchmark_out_format=json",
                ]
                res = subprocess.run(cmd, stdout=subprocess.DEVNULL,
                                     stderr=subprocess.DEVNULL)
                if res.returncode != 0:
                    raise RuntimeError(f"{binary} exited {res.returncode}")
                with open(out.name) as f:
                    return stable_rows(json.load(f))

        print(f"bench_gate: running {binary} "
              f"({len(base_rows)} stable benchmarks, "
              f"min of {args.repetitions} repetitions)")
        sys.stdout.flush()
        try:
            new_rows = measure(base_rows)
        except RuntimeError as e:
            print(f"bench_gate: {e}", file=sys.stderr)
            return 2

        ratios = {}
        for name, base_t in base_rows.items():
            if name in new_rows and base_t > 0:
                ratios[name] = new_rows[name] / base_t
        if not ratios:
            print(f"bench_gate: no overlapping benchmarks for '{key}'",
                  file=sys.stderr)
            return 2
        median = statistics.median(ratios.values())
        limit = median * (1.0 + args.tolerance)
        print(f"bench_gate: {key}: median host ratio {median:.3f}, "
              f"per-benchmark limit {limit:.3f}")

        def offenders():
            return sorted(n for n, r in ratios.items() if r > limit)

        for attempt in range(args.retries):
            bad = offenders()
            if not bad:
                break
            print(f"bench_gate: re-measuring {len(bad)} row(s) over the "
                  f"limit (retry {attempt + 1}/{args.retries}): "
                  + ", ".join(bad))
            sys.stdout.flush()
            try:
                again = measure(bad)
            except RuntimeError as e:
                print(f"bench_gate: {e}", file=sys.stderr)
                return 2
            for name in bad:
                if name in again and base_rows[name] > 0:
                    ratios[name] = min(ratios[name],
                                       again[name] / base_rows[name])

        for name, r in sorted(ratios.items()):
            compared += 1
            verdict = "FAIL" if r > limit else "ok"
            print(f"  {verdict:>4}  {r / median:6.3f}x rel  {name}")
            if r > limit:
                failures.append((key, name, r / median))

    if compared == 0:
        print("bench_gate: nothing compared", file=sys.stderr)
        return 2
    if failures:
        print(f"\nbench_gate: {len(failures)} regression(s) past "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for key, name, rel in failures:
            print(f"  {key}/{name}: {rel:.2f}x the median ratio",
                  file=sys.stderr)
        return 1
    print(f"\nbench_gate: pass ({compared} benchmarks within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
