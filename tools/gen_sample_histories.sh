#!/usr/bin/env bash
# Generates a directory of sample queue histories for smoke-testing
# selin_check's multi-history mode: several accepting traces, one
# non-linearizable trace, and (with --with-broken) one malformed trace.
#
# Usage: tools/gen_sample_histories.sh <dir> [--with-broken]
#
# CI drives `selin_check queue --jobs 4 <dir>/*.hist` over the output; with
# only ok_*.hist files the expected exit code is 0, with the rejecting trace
# included it is 1, and with --with-broken it is 4 (any-session-error).
set -euo pipefail

[[ $# -ge 1 ]] || { echo "usage: $0 <dir> [--with-broken]" >&2; exit 2; }
dir="$1"
with_broken=false
[[ "${2:-}" == "--with-broken" ]] && with_broken=true
mkdir -p "$dir"

# Accepting: overlapped enqueue/dequeue pairs with FIFO-consistent results.
for i in 1 2 3; do
  cat > "$dir/ok_$i.hist" <<EOF
# accepting queue trace $i
inv 0 0 Enqueue $((i * 10))
res 0 0 Enqueue $((i * 10)) true
inv 1 0 Enqueue $((i * 10 + 1))
inv 2 0 Dequeue
res 1 0 Enqueue $((i * 10 + 1)) true
res 2 0 Dequeue $((i * 10))
inv 0 1 Dequeue
res 0 1 Dequeue $((i * 10 + 1))
inv 1 1 Dequeue
res 1 1 Dequeue empty
EOF
done

# Rejecting: a dequeue returns a value never enqueued.
cat > "$dir/bad_fifo.hist" <<EOF
# non-linearizable queue trace (dequeues a phantom value)
inv 0 0 Enqueue 1
res 0 0 Enqueue 1 true
inv 1 0 Dequeue
res 1 0 Dequeue 99
EOF

if $with_broken; then
  # Malformed: response without a pending invocation.
  cat > "$dir/broken.hist" <<EOF
res 0 0 Dequeue empty
EOF
fi

echo "wrote $(ls "$dir" | wc -l) histories to $dir"
