// selin_check — offline linearizability checker over text histories.
//
// Usage:
//   selin_check <object> <history-file> [--witness] [--quiet] [--threads N]
//   selin_check <object> -              (read from stdin)
//
// <object>: queue | stack | set | pqueue | counter | register | consensus
//
// --threads N (N > 1) runs the membership test on the parallel sharded
// frontier engine; the witness (--witness) still comes from the sequential
// DFS, which is the only engine that records a linearization order.
//
// Exit codes: 0 = linearizable, 1 = NOT linearizable, 2 = usage/parse error.
//
// This is the P_O membership test of the paper exposed as a tool: the same
// engine the runtime verifier uses (and the same format certificates are
// exported in), so an auditor can re-validate a self-enforced object's
// witness without running the system (Section 8.3 forensics).
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "selin/io/history_io.hpp"
#include "selin/lincheck/checker.hpp"
#include "selin/sim/workload.hpp"

namespace {

using namespace selin;

std::optional<ObjectKind> parse_object(const std::string& s) {
  if (s == "queue") return ObjectKind::kQueue;
  if (s == "stack") return ObjectKind::kStack;
  if (s == "set") return ObjectKind::kSet;
  if (s == "pqueue") return ObjectKind::kPqueue;
  if (s == "counter") return ObjectKind::kCounter;
  if (s == "register") return ObjectKind::kRegister;
  if (s == "consensus") return ObjectKind::kConsensus;
  return std::nullopt;
}

int usage() {
  std::cerr << "usage: selin_check <queue|stack|set|pqueue|counter|register|"
               "consensus> <file|-> [--witness] [--quiet] [--threads N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  auto kind = parse_object(argv[1]);
  if (!kind.has_value()) return usage();
  bool want_witness = false, quiet = false;
  size_t threads = 1;
  for (int i = 3; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--witness") want_witness = true;
    else if (flag == "--quiet") quiet = true;
    else if (flag == "--threads" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long v = std::strtoul(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || v == 0 || v > 256) return usage();
      threads = static_cast<size_t>(v);
    } else {
      return usage();
    }
  }

  History h;
  try {
    std::string path = argv[2];
    if (path == "-") {
      h = parse_history(std::cin);
    } else {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "selin_check: cannot open " << path << "\n";
        return 2;
      }
      h = parse_history(in);
    }
  } catch (const HistoryParseError& e) {
    std::cerr << "selin_check: parse error: " << e.what() << "\n";
    return 2;
  }

  auto spec = make_spec(*kind);
  try {
    bool is_lin;
    std::optional<History> lin;
    if (threads > 1) {
      // Membership on the parallel sharded-frontier engine; the DFS witness
      // is only computed when explicitly requested.
      is_lin = linearizable(*spec, h, /*max_configs=*/1 << 18, threads);
      if (is_lin && want_witness) lin = find_linearization(*spec, h);
    } else {
      lin = find_linearization(*spec, h);
      is_lin = lin.has_value();
    }
    if (is_lin) {
      if (!quiet) {
        std::cout << "LINEARIZABLE (" << h.size() << " events";
        if (lin.has_value()) {
          std::cout << ", " << lin->size() / 2 << " ops linearized";
        }
        std::cout << ")\n";
        if (want_witness && lin.has_value()) {
          std::cout << "# linearization:\n";
          write_history(std::cout, *lin);
        }
      }
      return 0;
    }
    if (!quiet) {
      std::cout << "NOT LINEARIZABLE\n";
      // Minimal failing prefix for diagnosis.
      LinMonitor m(*spec, /*max_configs=*/1 << 18, threads);
      for (size_t i = 0; i < h.size(); ++i) {
        m.feed(h[i]);
        if (!m.ok()) {
          std::cout << "# first inconsistent event (index " << i << "): "
                    << to_string(h[i]) << "\n";
          break;
        }
      }
    }
    return 1;
  } catch (const CheckerOverflow&) {
    std::cerr << "selin_check: search budget exceeded (history has too much "
                 "sustained concurrency; the problem is NP-hard)\n";
    return 2;
  }
}
