// selin_check — offline linearizability checker over text histories.
//
// Single-history mode:
//   selin_check <object> <history-file> [--witness] [--quiet]
//               [--threads N|auto] [--tune] [--stats]
//   selin_check <object> -              (read from stdin)
//
// Multi-history mode (more than one file, or --jobs given): every file
// becomes an independent session of a service::MonitorService multiplexed
// over one shared executor — files are streamed line-at-a-time
// (HistoryStreamReader), batches are scheduled round-robin, and the
// sessions' membership tests run concurrently on --jobs worker lanes:
//   selin_check <object> file1 file2 ... [--jobs N] [--quiet]
//               [--threads N|auto] [--tune] [--stats]
// A per-file verdict summary table is printed at the end (unless --quiet,
// which prints only failing files).
//
// <object>: queue | stack | set | pqueue | counter | register | consensus
//
// --threads N (N > 1) runs the membership test on the parallel sharded
// frontier engine; --threads auto lets the engine pick sequential vs sharded
// per feed round by frontier width.  --tune (requires --threads auto)
// attaches the engine::AutoTuner, which feeds the engine's own stats —
// dedup hit rate, peak frontier width, round mix — back into the
// engage/retreat thresholds and the lane count online, replacing the fixed
// hysteresis constants.  In multi-history mode the knob applies per session,
// on top of the shared --jobs lanes.  The witness (--witness, single-history
// only) always comes from the sequential DFS, which is the only engine that
// records a linearization order.  --stats prints the engine's execution
// counters per history.
//
// Observability outputs (both modes):
//   --stats-json       print the engine counters as one JSON object per
//                      history (stable keys — see obs::engine_stats_json) on
//                      stdout; in multi-history mode one
//                      {"file":...,"stats":{...}} line per session.
//   --metrics <file|-> attach the obs metrics plane (per-session registries,
//                      engine round/frontier histograms, executor and
//                      drain-round instruments in multi mode) and write one
//                      obs::snapshot_json document at exit.  `-` writes the
//                      document to stdout and implies --quiet, so stdout is
//                      a single parseable JSON document.
//   --trace <file>     attach an obs::JsonlSink: one JSON line per span
//                      event (feed rounds, executor phases, tuner decisions,
//                      drain rounds, session batches — see obs/trace.hpp).
// Verdict exit codes are unchanged by these flags; an unwritable metrics or
// trace file is a usage error (2).
//
// Exit codes, single-history mode: 0 = linearizable, 1 = NOT linearizable,
// 2 = usage/parse error, 3 = exploration budget overflow (verdict unknown —
// the membership problem is NP-hard and this history has too much sustained
// concurrency).
//
// Exit codes, multi-history mode (worst session wins, most severe first):
//   4 = at least one session errored (file unreadable or malformed);
//   3 = at least one session overflowed its exploration budget;
//   1 = at least one history NOT linearizable;
//   0 = every history linearizable;
//   2 = usage error (bad flags/object — nothing was checked).
// The distinct codes let scripts separate "your trace is broken" (4) from
// "the verdict is unknown" (3) from "the implementation is wrong" (1).
//
// This is the P_O membership test of the paper exposed as a tool: the same
// engine the runtime verifier uses (and the same format certificates are
// exported in), so an auditor can re-validate a self-enforced object's
// witness without running the system (Section 8.3 forensics).
//
// Enforcement replay (--enforced, single-history only): instead of feeding
// the raw history to the membership monitor, re-run it through the actual
// enforcement stack — A* announcements over a replayed implementation (each
// response comes from the recorded history, not a live object) and
// MonitorCore's publish/check discipline, exactly the per-op path a
// SelfEnforced object executes (Figure 11).  Exit codes are the
// single-history codes: 0 = no check flagged, 1 = some check flagged,
// 3 = a checker overflowed its budget (sticky; verdict unknown).
// --stats/--stats-json/--metrics report the aggregated engine counters of
// all per-process checkers (the same stable keys — enforced objects are no
// longer opaque to the observability plane), and --threads N|auto selects
// the checkers' engine threading.  --witness is membership-mode only.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <unordered_map>
#include <vector>

#include "selin/core/astar.hpp"
#include "selin/core/monitor_core.hpp"
#include "selin/io/history_io.hpp"
#include "selin/lincheck/checker.hpp"
#include "selin/lincheck/monitor.hpp"
#include "selin/obs/export.hpp"
#include "selin/obs/hooks.hpp"
#include "selin/obs/trace.hpp"
#include "selin/service/monitor_service.hpp"
#include "selin/sim/workload.hpp"

namespace {

using namespace selin;

std::optional<ObjectKind> parse_object(const std::string& s) {
  if (s == "queue") return ObjectKind::kQueue;
  if (s == "stack") return ObjectKind::kStack;
  if (s == "set") return ObjectKind::kSet;
  if (s == "pqueue") return ObjectKind::kPqueue;
  if (s == "counter") return ObjectKind::kCounter;
  if (s == "register") return ObjectKind::kRegister;
  if (s == "consensus") return ObjectKind::kConsensus;
  return std::nullopt;
}

int usage() {
  std::cerr << "usage: selin_check <queue|stack|set|pqueue|counter|register|"
               "consensus> <file|-> [--witness] [--enforced] [--quiet] "
               "[--threads N|auto] "
               "[--tune] [--stats] [--stats-json] [--metrics <file|->] "
               "[--trace <file>]\n"
               "       selin_check <object> <file> <file> ... [--jobs N] "
               "[--quiet] [--threads N|auto] [--tune] [--stats] "
               "[--stats-json] [--metrics <file|->] [--trace <file>]\n";
  return 2;
}

/// Observability outputs shared by both modes.
struct ObsOpts {
  bool want_stats = false;
  bool stats_json = false;
  std::string metrics;  // empty = off; "-" = stdout
  std::string trace;    // empty = off
  bool enabled() const { return !metrics.empty() || !trace.empty(); }
};

/// Write one snapshot_json document to `target` ("-" = stdout).  Returns
/// false (after complaining) when the file cannot be written.
bool write_metrics(const obs::MetricsSnapshot& snap,
                   const std::string& target) {
  const std::string doc = obs::snapshot_json(snap);
  if (target == "-") {
    std::cout << doc << "\n";
    return true;
  }
  std::ofstream out(target);
  if (!out) {
    std::cerr << "selin_check: cannot write metrics to " << target << "\n";
    return false;
  }
  out << doc << "\n";
  return true;
}

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  out.push_back('"');
}

void print_stats(const engine::EngineStats& s) {
  double hit_rate =
      s.dedup_probes == 0
          ? 0.0
          : static_cast<double>(s.dedup_hits) / static_cast<double>(s.dedup_probes);
  std::cout << "# engine stats: lanes=" << s.lanes
            << " events=" << s.events_fed
            << " rounds_seq=" << s.rounds_sequential
            << " rounds_par=" << s.rounds_parallel
            << " peak_frontier=" << s.peak_frontier
            << " dedup_probes=" << s.dedup_probes
            << " dedup_hit_rate=" << hit_rate
            << " states_recycled=" << s.states_recycled
            << " engage=" << s.engage_width
            << " retreat=" << s.retreat_width
            << " mode_switches=" << s.mode_switches
            << " tuner_updates=" << s.tuner_updates << "\n";
}

int run_single(ObjectKind kind, const std::string& path, bool want_witness,
               bool quiet, const ObsOpts& oo, size_t threads) {
  History h;
  try {
    if (path == "-") {
      h = parse_history(std::cin);
    } else {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "selin_check: cannot open " << path << "\n";
        return 2;
      }
      h = parse_history(in);
    }
  } catch (const HistoryParseError& e) {
    std::cerr << "selin_check: parse error: " << e.what() << "\n";
    return 2;
  }

  std::unique_ptr<obs::JsonlSink> tsink;
  if (!oo.trace.empty()) {
    tsink = std::make_unique<obs::JsonlSink>(oo.trace);
    if (!tsink->ok()) {
      std::cerr << "selin_check: cannot write trace to " << oo.trace << "\n";
      return 2;
    }
  }

  auto spec = make_spec(kind);
  LinMonitor m(*spec, /*max_configs=*/1 << 18, threads);
  obs::MetricsRegistry reg;
  obs::EngineHooks hooks;
  if (oo.enabled()) {
    hooks = obs::make_engine_hooks(reg, {}, tsink.get());
    m.attach_obs(&hooks);
  }

  // Common tail of every verdict path: the per-history machine-readable
  // outputs, then the exit code (2 if a metrics file was unwritable).
  auto finish = [&](int code) {
    if (oo.want_stats) print_stats(m.stats());
    if (oo.stats_json) {
      std::cout << obs::engine_stats_json(m.stats()) << "\n";
    }
    if (!oo.metrics.empty()) {
      obs::sample_engine_stats(reg, m.stats());
      if (!write_metrics(reg.snapshot(), oo.metrics)) return 2;
    }
    return code;
  };

  size_t first_bad = h.size();
  try {
    for (size_t i = 0; i < h.size(); ++i) {
      m.feed(h[i]);
      if (!m.ok()) {
        first_bad = i;
        break;
      }
    }
  } catch (const CheckerOverflow&) {
    std::cerr << "selin_check: OVERFLOW — exploration budget exceeded; "
                 "verdict unknown (too much sustained concurrency; the "
                 "membership problem is NP-hard)\n";
    return finish(3);
  }

  if (m.ok()) {
    std::optional<History> lin;
    bool witness_overflow = false;
    if (want_witness) {
      try {
        lin = find_linearization(*spec, h);
      } catch (const CheckerOverflow&) {
        // The membership verdict above already stands; only the witness
        // search ran out of budget.  Report the verdict, warn about the
        // missing witness.
        witness_overflow = true;
      }
    }
    if (witness_overflow) {
      std::cerr << "selin_check: witness search exceeded its budget; "
                   "reporting the verdict without a linearization\n";
    }
    if (!quiet) {
      std::cout << "LINEARIZABLE (" << h.size() << " events";
      if (lin.has_value()) {
        std::cout << ", " << lin->size() / 2 << " ops linearized";
      }
      std::cout << ")\n";
      if (want_witness && lin.has_value()) {
        std::cout << "# linearization:\n";
        write_history(std::cout, *lin);
      }
    }
    return finish(0);
  }
  if (!quiet) {
    std::cout << "NOT LINEARIZABLE\n";
    std::cout << "# first inconsistent event (index " << first_bad
              << "): " << to_string(h[first_bad]) << "\n";
  }
  return finish(1);
}

/// The replayed implementation for --enforced: Apply(op) returns the
/// response the history recorded for that process's next completion, so
/// the enforcement stack re-executes the trace without a live object.
/// Responses pop per-process FIFO — a well-formed history completes each
/// process's operations in program order, which is also the order the
/// replay loop invokes them.
class ReplayImpl final : public IConcurrent {
 public:
  explicit ReplayImpl(const History& h) {
    for (const Event& e : h) {
      if (e.is_res()) recorded_[e.op.id.pid].push_back(e.result);
    }
  }
  const char* name() const override { return "replay"; }
  Value apply(ProcId p, const OpDesc&) override {
    auto it = recorded_.find(p);
    if (it == recorded_.end() || next_[p] >= it->second.size()) return kNoArg;
    return it->second[next_[p]++];
  }

 private:
  std::unordered_map<uint32_t, std::vector<Value>> recorded_;
  std::unordered_map<uint32_t, size_t> next_;
};

int run_enforced(ObjectKind kind, const std::string& path, bool quiet,
                 const ObsOpts& oo, size_t threads) {
  History h;
  try {
    if (path == "-") {
      h = parse_history(std::cin);
    } else {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "selin_check: cannot open " << path << "\n";
        return 2;
      }
      h = parse_history(in);
    }
  } catch (const HistoryParseError& e) {
    std::cerr << "selin_check: parse error: " << e.what() << "\n";
    return 2;
  }

  // SteppedAStar drives at most 64 process slots (its open-op table is
  // fixed); enforcement replay inherits the bound.
  uint32_t max_pid = 0;
  for (const Event& e : h) max_pid = std::max(max_pid, e.op.id.pid);
  const size_t n = static_cast<size_t>(max_pid) + 1;
  if (h.empty() || n > 64) {
    std::cerr << "selin_check: --enforced replays 1..64 process slots ("
              << (h.empty() ? 0 : n) << " in this history)\n";
    return 2;
  }

  std::unique_ptr<obs::JsonlSink> tsink;
  if (!oo.trace.empty()) {
    tsink = std::make_unique<obs::JsonlSink>(oo.trace);
    if (!tsink->ok()) {
      std::cerr << "selin_check: cannot write trace to " << oo.trace << "\n";
      return 2;
    }
  }
  obs::MetricsRegistry reg;
  obs::EngineHooks ehooks;
  obs::LeveledHooks lhooks;
  auto obj = make_linearizable_object(make_spec(kind));
  MonitorCore::Options copts;
  copts.checker_threads = threads;
  if (oo.enabled()) {
    ehooks = obs::make_engine_hooks(reg, {}, tsink.get());
    lhooks = obs::make_leveled_hooks(reg, {}, tsink.get(), 0, &ehooks);
    copts.obs = &lhooks;
  }

  ReplayImpl replay(h);
  AStar astar(n, replay);
  SteppedAStar step(astar);
  MonitorCore core(n, n, *obj, copts);

  auto finish = [&](int code) {
    if (oo.want_stats) print_stats(core.stats());
    if (oo.stats_json) {
      std::cout << obs::engine_stats_json(core.stats()) << "\n";
    }
    if (!oo.metrics.empty()) {
      obs::sample_engine_stats(reg, core.stats());
      if (!write_metrics(reg.snapshot(), oo.metrics)) return 2;
    }
    return code;
  };

  // Replay the trace through the Figure 11 per-op path: inv = announce (A*
  // Lines 01-02), res = invoke+snapshot (Lines 03-07) then publish+check.
  std::vector<char> open(n, 0);
  for (size_t i = 0; i < h.size(); ++i) {
    const Event& e = h[i];
    const ProcId p = static_cast<ProcId>(e.op.id.pid);
    if (e.is_inv()) {
      if (open[p]) {
        std::cerr << "selin_check: event " << i << " invokes on process "
                  << p << " with an operation still open\n";
        return 2;
      }
      open[p] = 1;
      step.announce(p, e.op.method, e.op.arg);
      continue;
    }
    if (!open[p]) {
      std::cerr << "selin_check: event " << i << " responds on process " << p
                << " with no open operation\n";
      return 2;
    }
    open[p] = 0;
    step.invoke(p);
    AStar::Result r = step.complete(p);
    core.publish(p, r.op, r.y, r.view);
    if (!core.check(p)) {
      if (core.overflowed(p)) {
        std::cerr << "selin_check: OVERFLOW — process " << p
                  << "'s checker exceeded its budget at event " << i
                  << "; verdict unknown from here (sticky)\n";
        return finish(3);
      }
      if (!quiet) {
        std::cout << "FLAGGED\n";
        std::cout << "# process " << p << "'s check flagged at event " << i
                  << ": " << to_string(e) << "\n";
      }
      return finish(1);
    }
  }
  if (!quiet) {
    std::cout << "ENFORCED OK (" << h.size()
              << " events; every per-op check passed)\n";
  }
  return finish(0);
}

int run_multi(ObjectKind kind, const std::vector<std::string>& files,
              size_t jobs, bool quiet, const ObsOpts& oo, size_t threads) {
  struct FileCtx {
    std::string path;
    std::ifstream stream;
    std::unique_ptr<HistoryStreamReader> reader;
    service::SessionId sid = 0;
    bool has_session = false;
    bool eof = false;
    std::string error;
  };

  std::unique_ptr<obs::JsonlSink> tsink;
  if (!oo.trace.empty()) {
    tsink = std::make_unique<obs::JsonlSink>(oo.trace);
    if (!tsink->ok()) {
      std::cerr << "selin_check: cannot write trace to " << oo.trace << "\n";
      return 2;
    }
  }
  // `--metrics -` must leave stdout a single parseable JSON document, so the
  // verdict table (including quiet mode's failing-file lines) is suppressed;
  // the exit code still carries the aggregate verdict.
  const bool suppress_report = oo.metrics == "-";

  service::ServiceOptions so;
  so.lanes = jobs;
  so.batch_limit = 512;
  so.observe = oo.enabled();
  so.trace = tsink.get();
  service::MonitorService svc(so);

  std::vector<FileCtx> ctxs(files.size());
  for (size_t i = 0; i < files.size(); ++i) {
    FileCtx& c = ctxs[i];
    c.path = files[i];
    c.stream.open(c.path);
    if (!c.stream) {
      c.error = "cannot open";
      c.eof = true;
      continue;
    }
    c.reader = std::make_unique<HistoryStreamReader>(c.stream);
    service::SessionOptions sopts;
    sopts.threads = threads;
    c.sid = svc.open(c.path, make_spec(kind), sopts);
    c.has_session = true;
  }

  // Stream round-robin: one read batch per live file, then one service
  // drain round, so no single deep file monopolizes either io or the
  // executor.  A parse error settles that file as ERRORED but the other
  // sessions keep going.
  constexpr size_t kReadBatch = 512;
  std::vector<Event> batch;
  for (;;) {
    bool reading = false;
    for (FileCtx& c : ctxs) {
      if (c.eof) continue;
      if (c.has_session && !svc.session(c.sid).ok()) {
        // Settled verdict (violation/overflow is sticky): further input
        // cannot change it, so don't parse the rest of the file.
        c.eof = true;
        continue;
      }
      batch.clear();
      try {
        if (c.reader->read_batch(batch, kReadBatch) == 0) {
          c.eof = true;
          // A dead stream that is not at end-of-file (directory passed as a
          // file, I/O error mid-trace) is a session error, not a clean EOF.
          if (!c.stream.eof()) c.error = "read error (stream failed)";
        }
      } catch (const HistoryParseError& e) {
        c.error = e.what();
        c.eof = true;
      }
      if (!batch.empty()) svc.feed(c.sid, batch);
      reading = reading || !c.eof;
    }
    if (svc.drain_round() == 0 && !reading) break;
  }
  svc.drain();

  size_t width = 4;  // "file" header
  for (const FileCtx& c : ctxs) width = std::max(width, c.path.size());
  bool any_error = false, any_overflow = false, any_violation = false;
  if (!quiet && !suppress_report) {
    std::cout << std::left << std::setw(static_cast<int>(width + 2)) << "file"
              << std::setw(12) << "verdict" << "events\n";
  }
  for (const FileCtx& c : ctxs) {
    std::string verdict;
    std::string detail;
    size_t events = 0;
    if (!c.error.empty()) {
      any_error = true;
      verdict = "ERROR";
      detail = c.error;
      if (c.has_session) events = svc.session(c.sid).events_fed();
    } else {
      const service::Session& s = svc.session(c.sid);
      events = s.events_fed();
      switch (s.status()) {
        case service::Session::Status::kOk:
          verdict = "OK";
          break;
        case service::Session::Status::kRejected:
          any_violation = true;
          verdict = "VIOLATION";
          detail = "inconsistent within events [" +
                   std::to_string(s.first_bad_index()) + ", " +
                   std::to_string(s.events_fed()) + ")";
          break;
        case service::Session::Status::kOverflowed:
          any_overflow = true;
          verdict = "OVERFLOW";
          detail = "budget exceeded; verdict unknown";
          break;
      }
    }
    if ((!quiet || verdict != "OK") && !suppress_report) {
      std::cout << std::left << std::setw(static_cast<int>(width + 2))
                << c.path << std::setw(12) << verdict << events;
      if (!detail.empty()) std::cout << "  # " << detail;
      std::cout << "\n";
    }
    if (oo.want_stats && c.has_session) {
      print_stats(svc.session(c.sid).stats());
    }
    if (oo.stats_json && c.has_session && !suppress_report) {
      std::string line = "{\"file\":";
      append_json_string(line, c.path);
      line += ",\"stats\":";
      line += obs::engine_stats_json(svc.session(c.sid).stats());
      line += "}";
      std::cout << line << "\n";
    }
  }
  if (!oo.metrics.empty() &&
      !write_metrics(svc.metrics_snapshot(), oo.metrics)) {
    return 2;
  }
  if (any_error) return 4;
  if (any_overflow) return 3;
  if (any_violation) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  auto kind = parse_object(argv[1]);
  if (!kind.has_value()) return usage();
  bool want_witness = false, quiet = false;
  bool want_tune = false, jobs_given = false, want_enforced = false;
  ObsOpts oo;
  size_t threads = 1;
  size_t jobs = 0;  // 0 = hardware-resolved
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--witness") want_witness = true;
    else if (flag == "--enforced") want_enforced = true;
    else if (flag == "--quiet") quiet = true;
    else if (flag == "--stats") oo.want_stats = true;
    else if (flag == "--stats-json") oo.stats_json = true;
    else if (flag == "--metrics" && i + 1 < argc) oo.metrics = argv[++i];
    else if (flag == "--trace" && i + 1 < argc) oo.trace = argv[++i];
    else if (flag == "--tune") want_tune = true;
    else if (flag == "--threads" && i + 1 < argc) {
      std::string v = argv[++i];
      if (v == "auto") {
        threads = engine::kAutoThreads;
      } else {
        char* end = nullptr;
        unsigned long n = std::strtoul(v.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || n == 0 || n > 256) {
          return usage();
        }
        threads = static_cast<size_t>(n);
      }
    } else if (flag == "--jobs" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long n = std::strtoul(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || n == 0 || n > 256) return usage();
      jobs = static_cast<size_t>(n);
      jobs_given = true;
    } else if (!flag.empty() && flag[0] == '-' && flag != "-") {
      return usage();
    } else {
      files.push_back(flag);
    }
  }
  if (files.empty()) return usage();
  // stdout carries the metrics document: keep it free of verdict prose.
  if (oo.metrics == "-") quiet = true;
  if (want_tune) {
    if (!engine::is_auto_threads(threads)) {
      std::cerr << "selin_check: --tune requires --threads auto\n";
      return usage();
    }
    threads |= engine::kTuneFlag;
  }

  const bool multi = files.size() > 1 || jobs_given;
  if (want_enforced) {
    if (multi) {
      std::cerr << "selin_check: --enforced is single-history only\n";
      return usage();
    }
    if (want_witness) {
      std::cerr << "selin_check: --enforced replays checks; --witness is "
                   "membership-mode only\n";
      return usage();
    }
    return run_enforced(*kind, files[0], quiet, oo, threads);
  }
  if (!multi) {
    return run_single(*kind, files[0], want_witness, quiet, oo, threads);
  }
  if (want_witness) {
    std::cerr << "selin_check: --witness is single-history only\n";
    return usage();
  }
  for (const std::string& f : files) {
    if (f == "-") {
      std::cerr << "selin_check: stdin ('-') is single-history only\n";
      return usage();
    }
  }
  return run_multi(*kind, files, jobs, quiet, oo, threads);
}
