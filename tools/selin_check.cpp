// selin_check — offline linearizability checker over text histories.
//
// Usage:
//   selin_check <object> <history-file> [--witness] [--quiet]
//               [--threads N|auto] [--tune] [--stats]
//   selin_check <object> -              (read from stdin)
//
// <object>: queue | stack | set | pqueue | counter | register | consensus
//
// --threads N (N > 1) runs the membership test on the parallel sharded
// frontier engine; --threads auto lets the engine pick sequential vs sharded
// per feed round by frontier width.  --tune (requires --threads auto)
// attaches the engine::AutoTuner, which feeds the engine's own stats —
// dedup hit rate, peak frontier width, round mix — back into the
// engage/retreat thresholds and the lane count online, replacing the fixed
// hysteresis constants.  The witness (--witness) always comes
// from the sequential DFS, which is the only engine that records a
// linearization order.  --stats prints the engine's execution counters
// (peak frontier width, dedup hit rate, recycled states, rounds dispatched
// parallel vs sequential).
//
// Exit codes: 0 = linearizable, 1 = NOT linearizable, 2 = usage/parse
// error, 3 = exploration budget overflow (verdict unknown — the membership
// problem is NP-hard and this history has too much sustained concurrency).
//
// This is the P_O membership test of the paper exposed as a tool: the same
// engine the runtime verifier uses (and the same format certificates are
// exported in), so an auditor can re-validate a self-enforced object's
// witness without running the system (Section 8.3 forensics).
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "selin/io/history_io.hpp"
#include "selin/lincheck/checker.hpp"
#include "selin/sim/workload.hpp"

namespace {

using namespace selin;

std::optional<ObjectKind> parse_object(const std::string& s) {
  if (s == "queue") return ObjectKind::kQueue;
  if (s == "stack") return ObjectKind::kStack;
  if (s == "set") return ObjectKind::kSet;
  if (s == "pqueue") return ObjectKind::kPqueue;
  if (s == "counter") return ObjectKind::kCounter;
  if (s == "register") return ObjectKind::kRegister;
  if (s == "consensus") return ObjectKind::kConsensus;
  return std::nullopt;
}

int usage() {
  std::cerr << "usage: selin_check <queue|stack|set|pqueue|counter|register|"
               "consensus> <file|-> [--witness] [--quiet] [--threads N|auto] "
               "[--tune] [--stats]\n";
  return 2;
}

void print_stats(const engine::EngineStats& s) {
  double hit_rate =
      s.dedup_probes == 0
          ? 0.0
          : static_cast<double>(s.dedup_hits) / static_cast<double>(s.dedup_probes);
  std::cout << "# engine stats: lanes=" << s.lanes
            << " events=" << s.events_fed
            << " rounds_seq=" << s.rounds_sequential
            << " rounds_par=" << s.rounds_parallel
            << " peak_frontier=" << s.peak_frontier
            << " dedup_probes=" << s.dedup_probes
            << " dedup_hit_rate=" << hit_rate
            << " states_recycled=" << s.states_recycled
            << " engage=" << s.engage_width
            << " retreat=" << s.retreat_width
            << " mode_switches=" << s.mode_switches
            << " tuner_updates=" << s.tuner_updates << "\n";
}

int report_overflow(const LinMonitor& m, bool want_stats) {
  if (want_stats) print_stats(m.stats());
  std::cerr << "selin_check: OVERFLOW — exploration budget exceeded; verdict "
               "unknown (too much sustained concurrency; the membership "
               "problem is NP-hard)\n";
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  auto kind = parse_object(argv[1]);
  if (!kind.has_value()) return usage();
  bool want_witness = false, quiet = false, want_stats = false;
  bool want_tune = false;
  size_t threads = 1;
  for (int i = 3; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--witness") want_witness = true;
    else if (flag == "--quiet") quiet = true;
    else if (flag == "--stats") want_stats = true;
    else if (flag == "--tune") want_tune = true;
    else if (flag == "--threads" && i + 1 < argc) {
      std::string v = argv[++i];
      if (v == "auto") {
        threads = engine::kAutoThreads;
      } else {
        char* end = nullptr;
        unsigned long n = std::strtoul(v.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || n == 0 || n > 256) {
          return usage();
        }
        threads = static_cast<size_t>(n);
      }
    } else {
      return usage();
    }
  }
  if (want_tune) {
    if (!engine::is_auto_threads(threads)) {
      std::cerr << "selin_check: --tune requires --threads auto\n";
      return usage();
    }
    threads |= engine::kTuneFlag;
  }

  History h;
  try {
    std::string path = argv[2];
    if (path == "-") {
      h = parse_history(std::cin);
    } else {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "selin_check: cannot open " << path << "\n";
        return 2;
      }
      h = parse_history(in);
    }
  } catch (const HistoryParseError& e) {
    std::cerr << "selin_check: parse error: " << e.what() << "\n";
    return 2;
  }

  auto spec = make_spec(*kind);
  LinMonitor m(*spec, /*max_configs=*/1 << 18, threads);
  size_t first_bad = h.size();
  try {
    for (size_t i = 0; i < h.size(); ++i) {
      m.feed(h[i]);
      if (!m.ok()) {
        first_bad = i;
        break;
      }
    }
  } catch (const CheckerOverflow&) {
    return report_overflow(m, want_stats);
  }

  if (m.ok()) {
    std::optional<History> lin;
    bool witness_overflow = false;
    if (want_witness) {
      try {
        lin = find_linearization(*spec, h);
      } catch (const CheckerOverflow&) {
        // The membership verdict above already stands; only the witness
        // search ran out of budget.  Report the verdict, warn about the
        // missing witness.
        witness_overflow = true;
      }
    }
    if (witness_overflow) {
      std::cerr << "selin_check: witness search exceeded its budget; "
                   "reporting the verdict without a linearization\n";
    }
    if (!quiet) {
      std::cout << "LINEARIZABLE (" << h.size() << " events";
      if (lin.has_value()) {
        std::cout << ", " << lin->size() / 2 << " ops linearized";
      }
      std::cout << ")\n";
      if (want_witness && lin.has_value()) {
        std::cout << "# linearization:\n";
        write_history(std::cout, *lin);
      }
    }
    if (want_stats) print_stats(m.stats());
    return 0;
  }
  if (!quiet) {
    std::cout << "NOT LINEARIZABLE\n";
    std::cout << "# first inconsistent event (index " << first_bad
              << "): " << to_string(h[first_bad]) << "\n";
  }
  if (want_stats) print_stats(m.stats());
  return 1;
}
