// selin_check — offline linearizability checker over text histories.
//
// Usage:
//   selin_check <object> <history-file> [--witness] [--quiet]
//   selin_check <object> -              (read from stdin)
//
// <object>: queue | stack | set | pqueue | counter | register | consensus
//
// Exit codes: 0 = linearizable, 1 = NOT linearizable, 2 = usage/parse error.
//
// This is the P_O membership test of the paper exposed as a tool: the same
// engine the runtime verifier uses (and the same format certificates are
// exported in), so an auditor can re-validate a self-enforced object's
// witness without running the system (Section 8.3 forensics).
#include <fstream>
#include <iostream>

#include "selin/io/history_io.hpp"
#include "selin/lincheck/checker.hpp"
#include "selin/sim/workload.hpp"

namespace {

using namespace selin;

std::optional<ObjectKind> parse_object(const std::string& s) {
  if (s == "queue") return ObjectKind::kQueue;
  if (s == "stack") return ObjectKind::kStack;
  if (s == "set") return ObjectKind::kSet;
  if (s == "pqueue") return ObjectKind::kPqueue;
  if (s == "counter") return ObjectKind::kCounter;
  if (s == "register") return ObjectKind::kRegister;
  if (s == "consensus") return ObjectKind::kConsensus;
  return std::nullopt;
}

int usage() {
  std::cerr << "usage: selin_check <queue|stack|set|pqueue|counter|register|"
               "consensus> <file|-> [--witness] [--quiet]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  auto kind = parse_object(argv[1]);
  if (!kind.has_value()) return usage();
  bool want_witness = false, quiet = false;
  for (int i = 3; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--witness") want_witness = true;
    else if (flag == "--quiet") quiet = true;
    else return usage();
  }

  History h;
  try {
    std::string path = argv[2];
    if (path == "-") {
      h = parse_history(std::cin);
    } else {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "selin_check: cannot open " << path << "\n";
        return 2;
      }
      h = parse_history(in);
    }
  } catch (const HistoryParseError& e) {
    std::cerr << "selin_check: parse error: " << e.what() << "\n";
    return 2;
  }

  auto spec = make_spec(*kind);
  try {
    auto lin = find_linearization(*spec, h);
    if (lin.has_value()) {
      if (!quiet) {
        std::cout << "LINEARIZABLE (" << h.size() << " events, "
                  << lin->size() / 2 << " ops linearized)\n";
        if (want_witness) {
          std::cout << "# linearization:\n";
          write_history(std::cout, *lin);
        }
      }
      return 0;
    }
    if (!quiet) {
      std::cout << "NOT LINEARIZABLE\n";
      // Minimal failing prefix for diagnosis.
      LinMonitor m(*spec);
      for (size_t i = 0; i < h.size(); ++i) {
        m.feed(h[i]);
        if (!m.ok()) {
          std::cout << "# first inconsistent event (index " << i << "): "
                    << to_string(h[i]) << "\n";
          break;
        }
      }
    }
    return 1;
  } catch (const CheckerOverflow&) {
    std::cerr << "selin_check: search budget exceeded (history has too much "
                 "sustained concurrency; the problem is NP-hard)\n";
    return 2;
  }
}
