// selin_ingest_soak — load generator and correctness oracle for
// selin_ingestd.
//
//   selin_ingest_soak (--uds <path> | --tcp <port> [--host <addr>])
//                     [--sessions N] [--events N] [--frame N] [--threads T]
//                     [--kind <object>] [--width 1|2] [--reject-every K]
//                     [--seed S] [--no-http-check]
//
// Opens N concurrent sessions (all connected and handshaken before any
// event flows, so the daemon really holds N live monitors at once), streams
// --events events into each from T client threads, then closes every
// session with kBye and checks the verdicts:
//
//   * Streams are generated through the object's own sequential spec
//     (SeqState::step), so every session is linearizable by construction —
//     expected verdict OK with events_fed == --events.
//   * Every K-th session (--reject-every, 0 = none) corrupts its final
//     response value; at that point the stream has width 1, where the spec's
//     response is unique — expected verdict REJECTED.
//
// --width 2 overlaps operation pairs (inv a, inv b, res a, res b) so the
// monitors explore non-trivial frontiers; --width 1 keeps streams
// sequential.  Delivery is stop-and-wait per session with kThrottle retries
// (see net/ingest_client.hpp), and sessions are interleaved frame-by-frame
// within each thread so all of them stay active for the whole run.
//
// Unless --no-http-check, the run ends with a plaintext "GET /stats" on a
// fresh connection and verifies the daemon's JSON: the server-side event
// total must equal the events generated here (every event acked exactly
// once — the wire's lossless-delivery claim, end to end).
//
// Prints one summary line:
//   SOAK ok sessions=N events=N throttles=N elapsed_ms=N eps=N
// Exit codes: 0 = all checks passed, 1 = any verdict/stats mismatch,
// 2 = usage error, 3 = connect failure.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <latch>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "selin/net/ingest_client.hpp"
#include "selin/sim/workload.hpp"
#include "selin/util/rng.hpp"

namespace {

using namespace selin;

struct Options {
  std::string uds_path;
  int tcp_port = -1;
  std::string tcp_host = "127.0.0.1";
  size_t sessions = 64;
  size_t events = 1000;   // per session (invocations + responses)
  size_t frame = 256;     // events per kEvents frame
  size_t threads = 4;
  ObjectKind kind = ObjectKind::kQueue;
  size_t width = 2;
  size_t reject_every = 10;
  uint64_t seed = 1234;
  bool http_check = true;
};

int usage() {
  std::cerr
      << "usage: selin_ingest_soak (--uds <path> | --tcp <port> [--host "
         "<addr>]) [--sessions N] [--events N] [--frame N] [--threads T] "
         "[--kind <object>] [--width 1|2] [--reject-every K] [--seed S] "
         "[--no-http-check]\n";
  return 2;
}

std::optional<ObjectKind> parse_object(const std::string& s) {
  if (s == "queue") return ObjectKind::kQueue;
  if (s == "stack") return ObjectKind::kStack;
  if (s == "set") return ObjectKind::kSet;
  if (s == "pqueue") return ObjectKind::kPqueue;
  if (s == "counter") return ObjectKind::kCounter;
  if (s == "register") return ObjectKind::kRegister;
  if (s == "consensus") return ObjectKind::kConsensus;
  return std::nullopt;
}

/// The overlapping partner op at width 2: always the kind's consuming /
/// observing method.  Two overlapped *producer* mutators with distinct
/// values (enqueue∥enqueue, push∥push) leave persistently ambiguous states
/// — queue [x,y] vs [y,x] — that the frontier must carry until later
/// consumers resolve them, and under FIFO order those ambiguities compound
/// exponentially.  A consumer/observer partner is always resolved by its
/// own response (or commutes into the identical state), so the frontier
/// stays O(1) by construction and soak throughput measures the *transport*,
/// not an adversarial checking instance.
std::pair<Method, Value> partner_op(ObjectKind kind) {
  switch (kind) {
    case ObjectKind::kQueue: return {Method::kDequeue, kNoArg};
    case ObjectKind::kStack: return {Method::kPop, kNoArg};
    case ObjectKind::kSet: return {Method::kContains, 3};
    case ObjectKind::kPqueue: return {Method::kPqExtractMin, kNoArg};
    case ObjectKind::kCounter: return {Method::kCounterRead, kNoArg};
    case ObjectKind::kRegister: return {Method::kRead, kNoArg};
    case ObjectKind::kConsensus: return {Method::kDecide, 1};
  }
  return {Method::kRead, kNoArg};
}

/// Spec-driven stream: linearizable by construction (responses follow the
/// sequential application order of each block, and overlapped pairs are
/// mutator∥consumer — see partner_op).  When `corrupt_tail`, the final
/// response value is wrong at a width-1 point, so the history is certainly
/// NOT linearizable.
std::vector<Event> make_stream(ObjectKind kind, size_t events, size_t width,
                               uint64_t seed, bool corrupt_tail) {
  std::vector<Event> out;
  out.reserve(events + 4);
  Rng rng(seed);
  auto state = make_spec(kind)->initial();
  uint32_t seq[2] = {0, 0};
  const auto gen_op = [&](ProcId pid) {
    auto [m, arg] = random_op(kind, rng);
    OpDesc op{{pid, seq[pid]++}, m, arg};
    return op;
  };
  // Leave room for the width-1 corrupt tail op (2 events).
  const size_t body_events = corrupt_tail ? (events >= 2 ? events - 2 : 0)
                                          : events;
  while (out.size() + 2 * width <= body_events) {
    if (width >= 2) {
      const OpDesc a = gen_op(0);
      const auto [bm, barg] = partner_op(kind);
      const OpDesc b{{1, seq[1]++}, bm, barg};
      const Value ra = state->step(a.method, a.arg);
      const Value rb = state->step(b.method, b.arg);
      out.push_back(Event::inv(a));
      out.push_back(Event::inv(b));
      out.push_back(Event::res(a, ra));
      out.push_back(Event::res(b, rb));
    } else {
      const OpDesc a = gen_op(0);
      const Value ra = state->step(a.method, a.arg);
      out.push_back(Event::inv(a));
      out.push_back(Event::res(a, ra));
    }
  }
  while (out.size() + 2 <= body_events) {  // top up with width-1 pairs
    const OpDesc a = gen_op(0);
    const Value ra = state->step(a.method, a.arg);
    out.push_back(Event::inv(a));
    out.push_back(Event::res(a, ra));
  }
  if (corrupt_tail && events >= 2) {
    const OpDesc a = gen_op(0);
    const Value ra = state->step(a.method, a.arg);
    out.push_back(Event::inv(a));
    out.push_back(Event::res(a, ra + 1));  // != the unique legal response
  }
  return out;
}

struct Shared {
  Options opts;
  std::latch* all_connected = nullptr;
  std::atomic<uint64_t> events_sent{0};
  std::atomic<uint64_t> throttles{0};
  std::atomic<uint64_t> failures{0};
  std::mutex log_mu;
};

void fail(Shared& sh, size_t session, const std::string& what) {
  sh.failures.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(sh.log_mu);
  std::cerr << "FAIL session " << session << ": " << what << "\n";
}

bool connect_client(const Options& o, net::IngestClient& c,
                    std::string* err) {
  if (!o.uds_path.empty()) return c.connect_uds(o.uds_path, err);
  return c.connect_tcp(o.tcp_host, o.tcp_port, err);
}

void worker(Shared& sh, size_t tid) {
  const Options& o = sh.opts;
  std::vector<size_t> mine;
  for (size_t s = tid; s < o.sessions; s += o.threads) mine.push_back(s);
  std::vector<net::IngestClient> clients(mine.size());
  std::vector<std::vector<Event>> streams(mine.size());
  std::string err;
  // Phase 1: connect + handshake everything before any event flows.
  for (size_t k = 0; k < mine.size(); ++k) {
    const size_t s = mine[k];
    const bool reject = o.reject_every > 0 && (s + 1) % o.reject_every == 0;
    streams[k] =
        make_stream(o.kind, o.events, o.width, o.seed ^ (s * 0x9e37), reject);
    if (!connect_client(o, clients[k], &err) ||
        !clients[k].hello(static_cast<uint8_t>(o.kind),
                          "soak-" + std::to_string(s), nullptr, &err)) {
      fail(sh, s, err);
    }
  }
  sh.all_connected->arrive_and_wait();
  // Phase 2: stream, interleaving sessions frame-by-frame so every session
  // stays concurrently active.
  for (size_t off = 0;; off += o.frame) {
    bool any = false;
    for (size_t k = 0; k < mine.size(); ++k) {
      if (!clients[k].connected() || off >= streams[k].size()) continue;
      any = true;
      const size_t n = std::min(o.frame, streams[k].size() - off);
      if (!clients[k].send_events({streams[k].data() + off, n}, &err)) {
        fail(sh, mine[k], err);
        clients[k].close();
        continue;
      }
      sh.events_sent.fetch_add(n, std::memory_order_relaxed);
    }
    if (!any) break;
  }
  // Phase 3: one sampled per-session stats frame, then verdicts via kBye.
  for (size_t k = 0; k < mine.size(); ++k) {
    const size_t s = mine[k];
    if (!clients[k].connected()) continue;
    if (k == 0) {
      std::string stats;
      if (!clients[k].stats(&stats, &err)) {
        fail(sh, s, "stats: " + err);
      } else if (stats.empty() || stats.front() != '{' ||
                 stats.find("\"events_fed\"") == std::string::npos) {
        fail(sh, s, "stats json shape: " + stats.substr(0, 80));
      }
    }
    net::VerdictBody v;
    if (!clients[k].bye(&v, &err)) {
      fail(sh, s, "bye: " + err);
      continue;
    }
    const bool reject = o.reject_every > 0 && (s + 1) % o.reject_every == 0;
    const auto expect =
        reject ? net::WireStatus::kRejected : net::WireStatus::kOk;
    if (v.status != expect) {
      fail(sh, s, "verdict status " +
                      std::to_string(static_cast<int>(v.status)) +
                      " != expected " +
                      std::to_string(static_cast<int>(expect)));
    } else if (!reject && v.events_fed != streams[k].size()) {
      fail(sh, s, "events_fed " + std::to_string(v.events_fed) + " != " +
                      std::to_string(streams[k].size()));
    } else if (reject && v.first_bad >= streams[k].size()) {
      fail(sh, s, "first_bad " + std::to_string(v.first_bad) +
                      " out of range");
    }
    sh.throttles.fetch_add(clients[k].throttles(),
                           std::memory_order_relaxed);
  }
}

/// Plaintext "GET /stats" over a fresh connection; true when the response
/// is a 200 with a JSON body whose server event total equals `expect`.
bool http_stats_check(const Options& o, uint64_t expect_events,
                      std::string* why) {
  net::IngestClient probe;  // borrow its connect helpers via raw fd
  std::string err;
  if (!connect_client(o, probe, &err)) {
    *why = "http connect: " + err;
    return false;
  }
  // Reuse the client's socket by speaking HTTP on it directly.
  const std::string req = "GET /stats HTTP/1.0\r\n\r\n";
  std::string resp;
  {
    // IngestClient has no raw-byte API; do the request on our own socket.
    probe.close();
    int fd;
    if (!o.uds_path.empty()) {
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::memcpy(addr.sun_path, o.uds_path.c_str(), o.uds_path.size() + 1);
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                              sizeof addr) != 0) {
        *why = "http connect failed";
        if (fd >= 0) ::close(fd);
        return false;
      }
    } else {
      *why = "";  // TCP path: reuse client connect for address resolution
      net::IngestClient tcp;
      if (!tcp.connect_tcp(o.tcp_host, o.tcp_port, &err)) {
        *why = "http connect: " + err;
        return false;
      }
      // Move the fd out by dup-ing through /proc is overkill; just speak
      // HTTP over a plain socket here too.
      tcp.close();
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<uint16_t>(o.tcp_port));
      inet_pton(AF_INET, o.tcp_host.c_str(), &addr.sin_addr);
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                              sizeof addr) != 0) {
        *why = "http connect failed";
        if (fd >= 0) ::close(fd);
        return false;
      }
    }
    size_t at = 0;
    while (at < req.size()) {
      const ssize_t n = ::send(fd, req.data() + at, req.size() - at, 0);
      if (n <= 0) {
        *why = "http send failed";
        ::close(fd);
        return false;
      }
      at += static_cast<size_t>(n);
    }
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) resp.append(buf, n);
    ::close(fd);
  }
  if (resp.find("200 OK") == std::string::npos) {
    *why = "http status: " + resp.substr(0, 40);
    return false;
  }
  // The daemon's event total is cumulative over its lifetime, so with other
  // (or earlier) clients it may exceed what this run sent; it can never be
  // lower — every event we generated was acked exactly once.
  const size_t at = resp.find("\"events\":");
  uint64_t total = 0;
  if (at == std::string::npos ||
      std::sscanf(resp.c_str() + at, "\"events\":%" SCNu64, &total) != 1) {
    *why = "stats json shape: " + resp.substr(resp.find("\r\n\r\n") + 4, 200);
    return false;
  }
  if (total < expect_events) {
    *why = "server event total " + std::to_string(total) + " < sent " +
           std::to_string(expect_events) + " (events lost)";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto val = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const auto num = [&](size_t* out) {
      const char* v = val();
      if (v == nullptr) return false;
      char* end = nullptr;
      *out = std::strtoull(v, &end, 10);
      return end != v && *end == '\0';
    };
    if (arg == "--uds") {
      const char* v = val();
      if (v == nullptr) return usage();
      o.uds_path = v;
    } else if (arg == "--tcp") {
      size_t p;
      if (!num(&p) || p > 65535) return usage();
      o.tcp_port = static_cast<int>(p);
    } else if (arg == "--host") {
      const char* v = val();
      if (v == nullptr) return usage();
      o.tcp_host = v;
    } else if (arg == "--sessions") {
      if (!num(&o.sessions) || o.sessions == 0) return usage();
    } else if (arg == "--events") {
      if (!num(&o.events) || o.events < 2) return usage();
    } else if (arg == "--frame") {
      if (!num(&o.frame) || o.frame == 0) return usage();
    } else if (arg == "--threads") {
      if (!num(&o.threads) || o.threads == 0) return usage();
    } else if (arg == "--kind") {
      const char* v = val();
      const auto k = v != nullptr ? parse_object(v) : std::nullopt;
      if (!k) return usage();
      o.kind = *k;
    } else if (arg == "--width") {
      if (!num(&o.width) || o.width < 1 || o.width > 2) return usage();
    } else if (arg == "--reject-every") {
      if (!num(&o.reject_every)) return usage();
    } else if (arg == "--seed") {
      size_t s;
      if (!num(&s)) return usage();
      o.seed = s;
    } else if (arg == "--no-http-check") {
      o.http_check = false;
    } else {
      return usage();
    }
  }
  if (o.uds_path.empty() && o.tcp_port < 0) return usage();
  if (o.threads > o.sessions) o.threads = o.sessions;

  // Fail fast if the daemon is not there.
  {
    net::IngestClient probe;
    std::string err;
    if (!connect_client(o, probe, &err)) {
      std::cerr << "selin_ingest_soak: " << err << "\n";
      return 3;
    }
  }

  Shared sh;
  sh.opts = o;
  std::latch connected(static_cast<ptrdiff_t>(o.threads));
  sh.all_connected = &connected;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(o.threads);
  for (size_t t = 0; t < o.threads; ++t) {
    pool.emplace_back([&sh, t] { worker(sh, t); });
  }
  for (auto& th : pool) th.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

  const uint64_t sent = sh.events_sent.load();
  if (o.http_check) {
    std::string why;
    if (!http_stats_check(o, sent, &why)) {
      std::cerr << "FAIL http stats: " << why << "\n";
      sh.failures.fetch_add(1);
    }
  }
  const uint64_t fails = sh.failures.load();
  const double secs = static_cast<double>(elapsed) / 1000.0;
  const uint64_t eps =
      secs > 0 ? static_cast<uint64_t>(static_cast<double>(sent) / secs) : 0;
  std::cout << "SOAK " << (fails == 0 ? "ok" : "FAILED") << " sessions="
            << o.sessions << " events=" << sent
            << " throttles=" << sh.throttles.load() << " failures=" << fails
            << " elapsed_ms=" << elapsed << " eps=" << eps << "\n";
  return fails == 0 ? 0 : 1;
}
