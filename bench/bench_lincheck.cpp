// B7 — cost of the local membership test P_O (Section 8.2's closing remark:
// the X(τ) construction is polynomial; the membership test dominates).
//
// Three facets:
//  * offline full-history check versus history length, per object family,
//  * the *incremental* monitor's amortized per-event cost (what Figures
//    10/11 actually pay per operation),
//  * sensitivity to the concurrency degree (open operations widen the
//    frontier — the NP-hardness lever).
#include <benchmark/benchmark.h>

#include "selin/selin.hpp"

namespace {

using namespace selin;

ObjectKind kind_of(int64_t i) {
  switch (i) {
    case 0: return ObjectKind::kQueue;
    case 1: return ObjectKind::kStack;
    case 2: return ObjectKind::kCounter;
    case 3: return ObjectKind::kRegister;
    default: return ObjectKind::kSet;
  }
}

// Linearizable-by-construction random history of the requested length.
// The concurrency window is capped at 2 simultaneously open operations:
// membership checking is NP-hard in the window width, and *sustained* wide
// windows over hundreds of operations (which no wait-free execution
// produces — operations complete promptly) make the frontier exponential.
// BM_FrontierVsConcurrency below prices the window width in isolation.
History make_history(ObjectKind kind, size_t n_procs, size_t ops,
                     uint64_t seed) {
  Rng rng(seed);
  auto spec = make_spec(kind);
  auto state = spec->initial();
  History h;
  struct Pend {
    OpDesc op;
    Value result;
  };
  std::vector<std::optional<Pend>> pend(n_procs);
  std::vector<uint32_t> seq(n_procs, 0);
  size_t invoked = 0;
  size_t open = 0;
  while (invoked < ops || open > 0) {
    ProcId p = static_cast<ProcId>(rng.below(n_procs));
    if (!pend[p].has_value()) {
      if (invoked >= ops || open >= 2) continue;
      auto [m, arg] = random_op(kind, rng);
      OpDesc d{OpId{p, seq[p]++}, m, arg};
      h.push_back(Event::inv(d));
      pend[p] = Pend{d, state->step(m, arg)};
      ++invoked;
      ++open;
    } else if (rng.chance(2, 3)) {
      h.push_back(Event::res(pend[p]->op, pend[p]->result));
      pend[p].reset();
      --open;
    }
  }
  return h;
}

void BM_OfflineCheckVsLength(benchmark::State& state) {
  ObjectKind kind = kind_of(state.range(0));
  size_t ops = static_cast<size_t>(state.range(1));
  auto spec = make_spec(kind);
  History h = make_history(kind, 3, ops, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linearizable(*spec, h));
  }
  state.SetLabel(std::string(object_kind_name(kind)) + "/ops=" +
                 std::to_string(ops));
  state.SetItemsProcessed(state.iterations() * ops);
}

BENCHMARK(BM_OfflineCheckVsLength)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {16, 64, 256, 1024}});

// Note the 512-op histories: a single monitor instance accumulates genuine
// linearization ambiguity over time for LIFO objects — two overlapping
// pushes whose elements are never popped stay permutable forever, so the
// frontier doubles per unresolved pair (measured: >10^5 configurations by
// ~7k events on a drifting stack).  Queues self-heal (FIFO flow eventually
// dequeues every ambiguous element).  This is a property of the *problem*,
// not the checker; the verifier in production restarts from sketch levels,
// and real workloads drain.  EXPERIMENTS.md discusses it.
void BM_IncrementalMonitorPerEvent(benchmark::State& state) {
  ObjectKind kind = kind_of(state.range(0));
  auto spec = make_spec(kind);
  History h = make_history(kind, 4, 512, 7);
  size_t i = 0;
  auto m = std::make_unique<LinMonitor>(*spec);
  uint64_t events = 0;
  for (auto _ : state) {
    if (i == h.size()) {  // restart on a fresh monitor
      state.PauseTiming();
      m = std::make_unique<LinMonitor>(*spec);
      i = 0;
      state.ResumeTiming();
    }
    m->feed(h[i++]);
    ++events;
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.SetLabel(object_kind_name(kind));
}

BENCHMARK(BM_IncrementalMonitorPerEvent)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// Frontier blow-up with the number of concurrently open operations: n
// overlapping enqueues admit up to n! linearization orders until dequeues
// disambiguate.
void BM_FrontierVsConcurrency(benchmark::State& state) {
  size_t width = static_cast<size_t>(state.range(0));
  auto spec = make_queue_spec();
  History h;
  for (size_t p = 0; p < width; ++p) {
    h.push_back(
        Event::inv(OpDesc{OpId{static_cast<ProcId>(p), 0}, Method::kEnqueue,
                          static_cast<Value>(p + 1)}));
  }
  for (size_t p = 0; p < width; ++p) {
    h.push_back(
        Event::res(OpDesc{OpId{static_cast<ProcId>(p), 0}, Method::kEnqueue,
                          static_cast<Value>(p + 1)},
                   kTrue));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linearizable(*spec, h, /*max_configs=*/1 << 22));
  }
  state.SetLabel("open_ops=" + std::to_string(width));
}

BENCHMARK(BM_FrontierVsConcurrency)->DenseRange(1, 7);

// Parallel frontier scaling (the `parallel_scaling` facet of
// BENCH_lincheck.json): verified-op throughput of the sharded engine versus
// the shard count on a frontier-width-sweep workload.  The history holds k
// forever-ambiguous overlapping push pairs — the frontier stays 2^k wide —
// under a stream of overlapping push/pop pairs, so every response re-expands
// a 2^k-configuration closure: exactly the work profile the shards split.
// Shard counts beyond the host's cores measure oversubscription, not
// speedup; run_bench.sh records items_per_second per shard count.
History make_wide_frontier_history(size_t k, size_t trailing_pairs) {
  History h;
  Value v = 1000;
  uint32_t seq0 = 0, seq1 = 0, seq2 = 0, seq3 = 0;
  for (size_t i = 0; i < k; ++i) {
    OpDesc a{OpId{0, seq0++}, Method::kPush, v++};
    OpDesc b{OpId{1, seq1++}, Method::kPush, v++};
    h.push_back(Event::inv(a));
    h.push_back(Event::inv(b));
    h.push_back(Event::res(a, kTrue));
    h.push_back(Event::res(b, kTrue));
  }
  for (size_t i = 0; i < trailing_pairs; ++i) {
    OpDesc push{OpId{2, seq2++}, Method::kPush, v};
    OpDesc pop{OpId{3, seq3++}, Method::kPop};
    h.push_back(Event::inv(push));
    h.push_back(Event::inv(pop));
    h.push_back(Event::res(push, kTrue));
    h.push_back(Event::res(pop, v));
    ++v;
  }
  return h;
}

void BM_ParallelFrontierScaling(benchmark::State& state) {
  size_t shards = static_cast<size_t>(state.range(0));
  constexpr size_t kAmbiguity = 12;      // frontier width 2^12 = 4096
  constexpr size_t kTrailingPairs = 24;  // 48 closure-triggering responses
  auto spec = make_stack_spec();
  History h = make_wide_frontier_history(kAmbiguity, kTrailingPairs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        linearizable(*spec, h, /*max_configs=*/1 << 22, shards));
  }
  state.SetLabel("shards=" + std::to_string(shards));
  state.SetItemsProcessed(state.iterations() * kTrailingPairs * 2);
}

BENCHMARK(BM_ParallelFrontierScaling)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Adaptive engine on a width-swinging workload: phases of wide ambiguity
// (2^10 frontier) resolved back down to width 1, repeated.  threads=auto
// should track the sequential engine on the narrow phases and the sharded
// engine on the wide ones; compare against the fixed-mode rows (arg 0 =
// auto, otherwise the literal thread count).
History make_width_swing_history(size_t phases, size_t k) {
  History h;
  Value v = 1;
  uint32_t seq0 = 0, seq1 = 0, seq2 = 0;
  for (size_t ph = 0; ph < phases; ++ph) {
    std::vector<std::pair<Value, Value>> pairs;
    for (size_t i = 0; i < k; ++i) {
      OpDesc a{OpId{0, seq0++}, Method::kPush, v++};
      OpDesc b{OpId{1, seq1++}, Method::kPush, v++};
      pairs.emplace_back(a.arg, b.arg);
      h.push_back(Event::inv(a));
      h.push_back(Event::inv(b));
      h.push_back(Event::res(a, kTrue));
      h.push_back(Event::res(b, kTrue));
    }
    for (size_t i = k; i-- > 0;) {
      for (Value popped : {pairs[i].second, pairs[i].first}) {
        OpDesc d{OpId{2, seq2++}, Method::kPop};
        h.push_back(Event::inv(d));
        h.push_back(Event::res(d, popped));
      }
    }
  }
  return h;
}

void BM_AdaptiveWidthSwing(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  if (threads == 0) threads = engine::kAutoThreads;
  auto spec = make_stack_spec();
  History h = make_width_swing_history(/*phases=*/3, /*k=*/10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        linearizable(*spec, h, /*max_configs=*/1 << 22, threads));
  }
  state.SetLabel(state.range(0) == 0
                     ? "threads=auto"
                     : "threads=" + std::to_string(threads));
  state.SetItemsProcessed(state.iterations() * h.size() / 2);
}

BENCHMARK(BM_AdaptiveWidthSwing)
    ->Arg(1)->Arg(4)->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
