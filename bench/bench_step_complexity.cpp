// B1 — Claim 8.1 / Lemma 7.2: shared-memory step complexity of the paper's
// constructions versus the number of processes n, measured with the
// base-object step counters.
//
// With the [63] snapshot the paper states O(n) per iteration; our wait-free
// snapshot is Afek et al. at O(n^2), and the lock-free double-collect does
// O(n) per attempt.  The bench prints steps/op for the full verifier loop
// (A* announce+scan, publish, monitor scan) so the polynomial shape and the
// history-length independence are both visible.
#include <benchmark/benchmark.h>

#include "selin/selin.hpp"

namespace {

using namespace selin;

void BM_VerifierStepsVsN(benchmark::State& state) {
  StepCounter::set_enabled(true);
  size_t n = static_cast<size_t>(state.range(1));
  SnapshotKind snap = state.range(0) == 0 ? SnapshotKind::kDoubleCollect
                                          : SnapshotKind::kAfek;
  auto impl = make_atomic_counter();
  auto obj = make_linearizable_object(make_counter_spec());
  AStar astar(n, *impl, snap);
  Verifier v(astar, *obj, {}, snap);
  uint64_t steps = 0, ops = 0;
  for (auto _ : state) {
    StepProbe probe;
    v.step(0, Method::kInc);
    steps += probe.steps();
    ++ops;
  }
  state.counters["steps_per_op"] = benchmark::Counter(
      static_cast<double>(steps) / static_cast<double>(ops));
  state.SetLabel(std::string(snapshot_kind_name(snap)) + "/n=" +
                 std::to_string(n));
  StepCounter::set_enabled(false);
}

BENCHMARK(BM_VerifierStepsVsN)
    ->ArgsProduct({{0, 1}, {2, 4, 8, 16, 32, 64}})
    ->Iterations(2000);

// History-length independence: steps/op sampled in windows along a long run
// must stay flat (the Section 9.1 linked-list representation is what makes
// this true — registers hold pointers, not whole sets).
void BM_VerifierStepsVsHistoryLength(benchmark::State& state) {
  StepCounter::set_enabled(true);
  auto impl = make_atomic_counter();
  auto obj = make_linearizable_object(make_counter_spec());
  AStar astar(4, *impl, SnapshotKind::kAfek);
  Verifier v(astar, *obj, {}, SnapshotKind::kAfek);
  int64_t warmup = state.range(0);
  for (int64_t i = 0; i < warmup; ++i) v.step(0, Method::kInc);
  uint64_t steps = 0, ops = 0;
  for (auto _ : state) {
    StepProbe probe;
    v.step(0, Method::kInc);
    steps += probe.steps();
    ++ops;
  }
  state.counters["steps_per_op"] = benchmark::Counter(
      static_cast<double>(steps) / static_cast<double>(ops));
  state.SetLabel("after=" + std::to_string(warmup) + "ops");
  StepCounter::set_enabled(false);
}

BENCHMARK(BM_VerifierStepsVsHistoryLength)
    ->Arg(0)
    ->Arg(1000)
    ->Arg(10000)
    ->Iterations(500);

// The producer side of D_{O,A} (Figure 12): the paper's follow-up [87]
// targets "A plus only five additional steps"; our producer does A plus one
// announce write, one snapshot scan and one publish write.
void BM_DecoupledProducerSteps(benchmark::State& state) {
  StepCounter::set_enabled(true);
  size_t n = static_cast<size_t>(state.range(0));
  auto impl = make_atomic_counter();
  auto obj = make_linearizable_object(make_counter_spec());
  Decoupled d(n, 1, *impl, *obj);
  uint64_t steps = 0, ops = 0;
  for (auto _ : state) {
    StepProbe probe;
    d.apply(0, Method::kInc);
    steps += probe.steps();
    ++ops;
  }
  state.counters["steps_per_op"] = benchmark::Counter(
      static_cast<double>(steps) / static_cast<double>(ops));
  state.SetLabel("n=" + std::to_string(n));
  StepCounter::set_enabled(false);
}

BENCHMARK(BM_DecoupledProducerSteps)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Iterations(2000);

}  // namespace
