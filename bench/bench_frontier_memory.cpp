// Frontier memory footprint (the `frontier_memory` facet of
// BENCH_lincheck.json): peak live configurations and mean per-configuration
// op-set bytes of the run-length representation (util/interval_set.hpp),
// against the modeled cost of the flat SmallVec representation it replaced
// (small_vec_model_bytes).
//
// The workloads are built around *stragglers*: operations whose effect is
// forced by later observations but whose responses never arrive, so they sit
// in every configuration's op set for the rest of the history.  Stragglers
// on adjacent process ids form one contiguous seq-major run — the lockstep
// cohort shape the compressed representation targets.  Wall time is
// secondary here (the facet is listed in bench_gate.py's unstable set); the
// counters are the product.
#include <benchmark/benchmark.h>

#include "selin/selin.hpp"

namespace {

using namespace selin;

/// Accumulated footprint polls over one monitored history.
struct FootprintProbe {
  size_t peak_configs = 0;
  size_t peak_total_bytes = 0;
  uint64_t sum_configs = 0;
  uint64_t sum_elems = 0;
  uint64_t sum_bytes = 0;
  uint64_t sum_model_bytes = 0;

  void poll(const engine::FrontierFootprint& f) {
    peak_configs = std::max(peak_configs, f.configs);
    peak_total_bytes = std::max(peak_total_bytes, f.opset_bytes);
    sum_configs += f.configs;
    sum_elems += f.opset_elems;
    sum_bytes += f.opset_bytes;
    sum_model_bytes += f.opset_smallvec_bytes;
  }

  void publish(benchmark::State& state) const {
    const double configs = sum_configs == 0 ? 1.0 : double(sum_configs);
    const double bytes = double(sum_bytes) / configs;
    const double model = double(sum_model_bytes) / configs;
    state.counters["peak_configs"] = double(peak_configs);
    state.counters["peak_footprint_bytes"] = double(peak_total_bytes);
    state.counters["opset_elems_per_config"] = double(sum_elems) / configs;
    state.counters["opset_bytes_per_config"] = bytes;
    state.counters["smallvec_bytes_per_config"] = model;
    state.counters["compression_x"] = bytes == 0 ? 0.0 : model / bytes;
  }
};

// Straggler-cohort queue history: processes 0..w-1 enqueue distinct values
// at seq 0 and never hear back.  Each enqueue is chased immediately by a
// dequeue that observes its value — the queue is empty at that point, so the
// observation forces the straggler linearized (with value kTrue) in every
// surviving configuration, where it stays, as one w-wide seq-major run, for
// the whole stream that follows.  Forcing one straggler at a time keeps the
// closure tiny (at most two unlinearized ops per round); invoking the cohort
// up front would hand the closure w! enqueue orders.  The stream is
// `stream_ops` further enqueue/dequeue operations on two fresh processes, so
// the frontier stays narrow while every configuration drags the cohort
// along.
History make_straggler_queue_history(size_t w, size_t stream_ops) {
  History h;
  const Value base = 1000;
  uint32_t dseq = 0;
  const ProcId drain = static_cast<ProcId>(w);
  for (size_t p = 0; p < w; ++p) {
    h.push_back(Event::inv(OpDesc{OpId{static_cast<ProcId>(p), 0},
                                  Method::kEnqueue,
                                  base + static_cast<Value>(p)}));
    OpDesc d{OpId{drain, dseq++}, Method::kDequeue};
    h.push_back(Event::inv(d));
    h.push_back(Event::res(d, base + static_cast<Value>(p)));
  }
  const ProcId enq = static_cast<ProcId>(w + 1);
  const ProcId deq = static_cast<ProcId>(w + 2);
  uint32_t eseq = 0, qseq = 0;
  Value v = base + static_cast<Value>(w);
  for (size_t i = 0; i + 1 < stream_ops; i += 2) {
    OpDesc e{OpId{enq, eseq++}, Method::kEnqueue, v};
    OpDesc d{OpId{deq, qseq++}, Method::kDequeue};
    h.push_back(Event::inv(e));
    h.push_back(Event::res(e, kTrue));
    h.push_back(Event::inv(d));
    h.push_back(Event::res(d, v));
    ++v;
  }
  return h;
}

void BM_FrontierMemoryLinStragglers(benchmark::State& state) {
  const size_t w = static_cast<size_t>(state.range(0));
  const size_t stream_ops = size_t{1} << state.range(1);
  auto spec = make_queue_spec();
  History h = make_straggler_queue_history(w, stream_ops);
  FootprintProbe probe;
  for (auto _ : state) {
    probe = FootprintProbe{};
    LinMonitor m(*spec);
    for (const Event& e : h) {
      m.feed(e);
      if (e.is_res()) probe.poll(m.footprint());
    }
    if (!m.ok()) {
      state.SkipWithError("straggler history rejected");
      return;
    }
  }
  probe.publish(state);
  state.SetLabel("stragglers=" + std::to_string(w) +
                 "/ops=" + std::to_string(stream_ops + 2 * w));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * h.size()));
}

// w ∈ {12, 16} spills the flat SmallVec<.., 8> model onto the heap; the
// 2^14-op streams are the "long workload" of the facet's acceptance bar.
BENCHMARK(BM_FrontierMemoryLinStragglers)
    ->ArgsProduct({{12, 16}, {14}})
    ->Unit(benchmark::kMillisecond);

// Lockstep write-snapshot history for the interval engine: processes enter
// in cohorts of `group`, every member of a cohort seeing the same view (all
// previous cohorts plus the whole cohort) — the interval-sequential shape
// where a cohort enters the machine as one I-set.  Mid-round, the cohort
// sits in IConfig::machine_open as one contiguous seq-major run.  Pending
// machine-open ops cannot persist across rounds here: the closure's
// speculative machine-respond move would fork a configuration per candidate
// respond point, so — unlike the lin workload above — the interval cohorts
// retire each round and the history is bounded by the one-shot task's
// n <= 64.  The lin benchmark carries the long-workload criterion.
History make_lockstep_ws_history(size_t n, size_t group) {
  History h;
  auto ws = [](size_t p) {
    return OpDesc{OpId{static_cast<ProcId>(p), 0}, Method::kWriteSnap, 1};
  };
  uint64_t entered = 0;
  for (size_t lo = 0; lo < n; lo += group) {
    const size_t hi = std::min(n, lo + group);
    for (size_t p = lo; p < hi; ++p) {
      h.push_back(Event::inv(ws(p)));
      entered |= uint64_t{1} << p;
    }
    for (size_t p = lo; p < hi; ++p) {
      h.push_back(Event::res(ws(p), static_cast<Value>(entered)));
    }
  }
  return h;
}

void BM_FrontierMemoryIntervalLockstep(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t group = static_cast<size_t>(state.range(1));
  auto spec = make_write_snapshot_interval_spec();
  History h = make_lockstep_ws_history(n, group);
  FootprintProbe probe;
  for (auto _ : state) {
    probe = FootprintProbe{};
    IntervalLinMonitor m(*spec);
    for (const Event& e : h) {
      m.feed(e);
      if (e.is_res()) probe.poll(m.footprint());
    }
    if (!m.ok()) {
      state.SkipWithError("lockstep write-snapshot history rejected");
      return;
    }
  }
  probe.publish(state);
  state.SetLabel("procs=" + std::to_string(n) +
                 "/group=" + std::to_string(group));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * h.size()));
}

// Cohorts beyond ~5 overflow the closure: the speculative respond move
// forks a configuration per (entry mask, assign point) pair, the
// NP-hardness lever of the concurrency window.
BENCHMARK(BM_FrontierMemoryIntervalLockstep)
    ->Args({64, 5})
    ->Args({64, 3})
    ->Unit(benchmark::kMillisecond);

}  // namespace
