// The `abd_cluster` facet: a monitored ABD cluster under load — hundreds to
// thousands of logical clients riding a few driver threads, every operation
// runtime-verified through per-register MonitorService sessions on the
// batched frontier engine, over reliable and lossy/reordered simulated
// links.
//
// items/s = completed *verified* client operations (the drainer keeps the
// sessions caught up during the run; teardown drains the tail and asserts
// every verdict stayed kOk).  Counters: ABD protocol messages per op,
// messages dropped by the lossy links, client retransmissions, and events
// fed to the monitors.
#include <benchmark/benchmark.h>

#include "selin/msgpass/abd_cluster.hpp"
#include "selin/selin.hpp"

namespace {

using namespace selin;

// args: {logical clients, drop permille (reorder rides along when > 0)}
void BM_AbdClusterVerifiedOps(benchmark::State& state) {
  static std::unique_ptr<AbdCluster> cluster;
  const size_t clients = static_cast<size_t>(state.range(0));
  const uint32_t drop = static_cast<uint32_t>(state.range(1));
  const size_t threads = static_cast<size_t>(state.threads());
  if (state.thread_index() == 0) {
    StepCounter::set_enabled(false);
    AbdClusterOptions opts;
    opts.replicas = 3;
    opts.keys = 4;
    opts.seed = 21;
    opts.max_delay_us = 0;
    opts.drop_permille = drop;
    opts.reorder = drop > 0;
    opts.executor = std::make_shared<parallel::Executor>(2);
    cluster = std::make_unique<AbdCluster>(opts);
    cluster->start_drainer();
  }
  // Each driver thread owns a disjoint slice of the logical client
  // population and cycles through it, so every client stays sequential
  // while the cluster sees `threads` concurrent ops.
  const size_t slice = clients / threads;
  const size_t base = static_cast<size_t>(state.thread_index()) * slice;
  Rng rng(base + 77);
  size_t next = 0;
  for (auto _ : state) {
    ProcId client = static_cast<ProcId>(base + next);
    next = (next + 1) % slice;
    uint64_t key = rng.below(4);
    if (rng.below(2) == 0) {
      cluster->write(client, key, static_cast<Value>(rng.below(1000)));
    } else {
      benchmark::DoNotOptimize(cluster->read(client, key));
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    cluster->stop_drainer();
    const double ops = static_cast<double>(cluster->ops());
    state.counters["msgs_per_op"] = benchmark::Counter(
        static_cast<double>(cluster->network().messages_processed()) /
        (ops > 0 ? ops : 1));
    state.counters["dropped"] = benchmark::Counter(
        static_cast<double>(cluster->network().messages_dropped()));
    state.counters["retransmits"] = benchmark::Counter(
        static_cast<double>(cluster->network().retransmissions()));
    state.counters["events_fed"] =
        benchmark::Counter(static_cast<double>(cluster->stats().events_fed));
    state.counters["all_ok"] =
        benchmark::Counter(cluster->all_ok() ? 1.0 : 0.0);
    state.SetLabel("clients=" + std::to_string(clients) +
                   (drop > 0 ? " lossy+reordered" : " reliable"));
    cluster.reset();
  }
}

BENCHMARK(BM_AbdClusterVerifiedOps)
    ->Args({256, 0})
    ->Args({256, 20})
    ->Args({2048, 0})
    ->Args({2048, 20})
    ->Threads(4)
    ->UseRealTime()
    ->Iterations(1024);

}  // namespace
