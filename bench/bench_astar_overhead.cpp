// B2 — Lemma 7.2: the A* wrapper preserves progress and adds step overhead
// independent of history length (O(n) with a linear snapshot; O(n^2) with
// the Afek snapshot used here as the wait-free reference).
//
// Two views of the claim:
//  * throughput: raw A vs A* at increasing thread counts (the wrapper tax),
//  * steps/op of the wrapper alone versus n (the analytic shape).
#include <benchmark/benchmark.h>

#include "selin/selin.hpp"

namespace {

using namespace selin;

// Raw Michael–Scott queue throughput (the A side of the comparison).
void BM_RawQueue(benchmark::State& state) {
  static std::unique_ptr<IConcurrent> q;
  if (state.thread_index() == 0) {
    StepCounter::set_enabled(false);
    q = make_ms_queue();
  }
  auto p = static_cast<ProcId>(state.thread_index());
  Rng rng(p * 7 + 1);
  uint32_t seq = 0;
  for (auto _ : state) {
    auto [m, arg] = random_op(ObjectKind::kQueue, rng);
    benchmark::DoNotOptimize(q->apply(p, OpDesc{OpId{p, seq++}, m, arg}));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_RawQueue)->ThreadRange(1, 8)->UseRealTime();

// The same workload through A* (announce + A + snapshot + view).
void BM_AStarQueue(benchmark::State& state) {
  static std::unique_ptr<IConcurrent> q;
  static std::unique_ptr<AStar> astar;
  if (state.thread_index() == 0) {
    StepCounter::set_enabled(false);
    q = make_ms_queue();
    astar = std::make_unique<AStar>(static_cast<size_t>(state.threads()), *q,
                                    state.range(0) == 0
                                        ? SnapshotKind::kDoubleCollect
                                        : SnapshotKind::kAfek);
  }
  auto p = static_cast<ProcId>(state.thread_index());
  Rng rng(p * 7 + 1);
  for (auto _ : state) {
    auto [m, arg] = random_op(ObjectKind::kQueue, rng);
    benchmark::DoNotOptimize(astar->apply(p, m, arg));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.SetLabel(state.range(0) == 0 ? "double-collect" : "afek");
  }
}

BENCHMARK(BM_AStarQueue)->Arg(0)->Arg(1)->ThreadRange(1, 8)->UseRealTime();

// Wrapper steps per operation versus n (solo run; A contributes a constant).
void BM_AStarStepsVsN(benchmark::State& state) {
  StepCounter::set_enabled(true);
  size_t n = static_cast<size_t>(state.range(1));
  auto q = make_ms_queue();
  AStar astar(n, *q,
              state.range(0) == 0 ? SnapshotKind::kDoubleCollect
                                  : SnapshotKind::kAfek);
  Rng rng(3);
  uint64_t total_steps = 0, ops = 0;
  for (auto _ : state) {
    auto [m, arg] = random_op(ObjectKind::kQueue, rng);
    StepProbe probe;
    benchmark::DoNotOptimize(astar.apply(0, m, arg));
    total_steps += probe.steps();
    ++ops;
  }
  state.counters["steps_per_op"] = benchmark::Counter(
      static_cast<double>(total_steps) / static_cast<double>(ops));
  state.SetLabel(std::string(state.range(0) == 0 ? "double-collect" : "afek") +
                 "/n=" + std::to_string(n));
  StepCounter::set_enabled(false);
}

BENCHMARK(BM_AStarStepsVsN)->ArgsProduct({{0, 1}, {2, 4, 8, 16, 32}});

}  // namespace
