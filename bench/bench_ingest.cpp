// Live-ingest facet (`ingest` in BENCH_lincheck.json, recorded by
// tools/run_bench.sh --facet ingest): what the binary wire protocol buys
// over the text pipeline it displaces, and what the full MPSC publish +
// drain path costs on top of raw decoding.
//
//   BM_IngestWireDecode  peek_frame + decode_events over a pre-encoded
//                        kEvents frame stream — the daemon reactor's
//                        per-connection hot path (no heap per frame).
//   BM_IngestTextParse   the same history through io/history_io's streaming
//                        reader — the selin_check file path the wire format
//                        keeps off the live path.
//   BM_IngestMpscPublishDrain
//                        decoded batches published into a session's bounded
//                        MPSC inbox and drained by the service — end to end
//                        minus the sockets.
//
// Single-producer and deterministic, but timings ride the host's allocator
// and cache sizes; the facet is recorded for the trajectory and excluded
// from the regression gate (BM_Ingest in tools/bench_gate.py
// UNSTABLE_PREFIXES) until the bench-scaling job records it on the CI
// runner.
#include <benchmark/benchmark.h>

#include <sstream>
#include <vector>

#include "selin/io/history_io.hpp"
#include "selin/net/wire.hpp"
#include "selin/selin.hpp"
#include "selin/service/monitor_service.hpp"

namespace {

using namespace selin;

constexpr size_t kOps = 4096;        // 8192 events
constexpr size_t kFrameEvents = 256;  // events per kEvents frame

// Linearizable-by-construction queue history: width-2 mutator∥consumer
// blocks, the soak driver's shape (tools/selin_ingest_soak.cpp).  The
// consumer side of each overlapped pair is resolved by its own response, so
// the monitor's frontier stays O(1) and the publish+drain arm measures the
// transport, not an adversarial checking instance (random mutator∥mutator
// overlaps compound queue-order ambiguities exponentially).
History make_stream(uint64_t seed) {
  Rng rng(seed);
  auto state = make_spec(ObjectKind::kQueue)->initial();
  History h;
  h.reserve(2 * kOps);
  uint32_t seq[2] = {0, 0};
  while (h.size() < 2 * kOps) {
    auto [m, arg] = random_op(ObjectKind::kQueue, rng);
    const OpDesc a{OpId{0, seq[0]++}, m, arg};
    const OpDesc b{OpId{1, seq[1]++}, Method::kDequeue, kNoArg};
    const Value ra = state->step(a.method, a.arg);
    const Value rb = state->step(b.method, b.arg);
    h.push_back(Event::inv(a));
    h.push_back(Event::inv(b));
    h.push_back(Event::res(a, ra));
    h.push_back(Event::res(b, rb));
  }
  return h;
}

/// The history pre-encoded as consecutive kEvents frames.
std::vector<uint8_t> encode_frames(const History& h) {
  std::vector<uint8_t> wire;
  uint32_t seq = 0;
  for (size_t at = 0; at < h.size(); at += kFrameEvents) {
    const size_t n = std::min(kFrameEvents, h.size() - at);
    net::append_events(wire, /*session=*/1, seq++, {h.data() + at, n});
  }
  return wire;
}

void BM_IngestWireDecode(benchmark::State& state) {
  const History h = make_stream(0x1357);
  const std::vector<uint8_t> wire = encode_frames(h);
  std::vector<Event> batch;
  uint64_t events = 0;
  for (auto _ : state) {
    size_t at = 0;
    while (at < wire.size()) {
      net::FrameView f;
      if (net::peek_frame({wire.data() + at, wire.size() - at}, f) !=
          net::DecodeStatus::kFrame) {
        state.SkipWithError("bad frame");
        return;
      }
      if (!net::decode_events(f.body, batch)) {
        state.SkipWithError("bad records");
        return;
      }
      benchmark::DoNotOptimize(batch.data());
      events += batch.size();
      at += f.frame_len;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * wire.size()));
  state.SetLabel("wire-decode");
}
BENCHMARK(BM_IngestWireDecode);

void BM_IngestTextParse(benchmark::State& state) {
  const History h = make_stream(0x1357);
  const std::string text = history_to_string(h);
  std::vector<Event> batch;
  uint64_t events = 0;
  for (auto _ : state) {
    std::istringstream in(text);
    HistoryStreamReader reader(in);
    for (;;) {
      batch.clear();
      if (reader.read_batch(batch, kFrameEvents) == 0) break;
      benchmark::DoNotOptimize(batch.data());
      events += batch.size();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * text.size()));
  state.SetLabel("text-parse");
}
BENCHMARK(BM_IngestTextParse);

void BM_IngestMpscPublishDrain(benchmark::State& state) {
  const History h = make_stream(0x1357);
  uint64_t events = 0;
  for (auto _ : state) {
    service::ServiceOptions opts;
    opts.lanes = 1;
    opts.batch_limit = 512;
    service::MonitorService svc(opts);
    const auto sid = svc.open("bench", make_spec(ObjectKind::kQueue));
    service::Session* s = svc.find(sid);
    for (size_t at = 0; at < h.size(); at += kFrameEvents) {
      const size_t n = std::min(kFrameEvents, h.size() - at);
      while (!s->try_publish({h.data() + at, n})) svc.drain_round();
    }
    while (s->backlog() > 0) svc.drain_round();
    if (!s->ok()) {
      state.SkipWithError("stream rejected");
      return;
    }
    events += s->events_fed();
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.SetLabel("publish+drain");
}
BENCHMARK(BM_IngestMpscPublishDrain)->Unit(benchmark::kMillisecond);

}  // namespace
