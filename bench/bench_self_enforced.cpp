// B3 — Theorem 8.2(1): self-enforced throughput/latency versus the raw
// implementation across thread counts and object families.  The enforcement
// tax = A* overhead + publish + incremental membership check.  Expected
// shape: a constant-factor slowdown that grows mildly with threads (bigger
// sketches per check), never a progress loss.
#include <benchmark/benchmark.h>

#include "selin/selin.hpp"

namespace {

using namespace selin;

ObjectKind kind_of(int64_t i) {
  switch (i) {
    case 0: return ObjectKind::kQueue;
    case 1: return ObjectKind::kStack;
    case 2: return ObjectKind::kCounter;
    default: return ObjectKind::kRegister;
  }
}

void BM_RawObject(benchmark::State& state) {
  static std::unique_ptr<IConcurrent> impl;
  ObjectKind kind = kind_of(state.range(0));
  if (state.thread_index() == 0) {
    StepCounter::set_enabled(false);
    impl = make_correct_impl(kind);
  }
  auto p = static_cast<ProcId>(state.thread_index());
  Rng rng(p * 11 + 3);
  uint32_t seq = 0;
  for (auto _ : state) {
    auto [m, arg] = random_op(kind, rng);
    benchmark::DoNotOptimize(impl->apply(p, OpDesc{OpId{p, seq++}, m, arg}));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) state.SetLabel(object_kind_name(kind));
}

BENCHMARK(BM_RawObject)->Arg(0)->Arg(2)->ThreadRange(1, 8)->UseRealTime();

void BM_SelfEnforcedObject(benchmark::State& state) {
  static std::unique_ptr<IConcurrent> impl;
  static std::unique_ptr<GenLinObject> obj;
  static std::unique_ptr<SelfEnforced> se;
  ObjectKind kind = kind_of(state.range(0));
  if (state.thread_index() == 0) {
    StepCounter::set_enabled(false);
    impl = make_correct_impl(kind);
    obj = make_linearizable_object(make_spec(kind));
    se = std::make_unique<SelfEnforced>(
        static_cast<size_t>(state.threads()), *impl, *obj);
  }
  auto p = static_cast<ProcId>(state.thread_index());
  Rng rng(p * 11 + 3);
  for (auto _ : state) {
    auto [m, arg] = random_op(kind, rng);
    benchmark::DoNotOptimize(se->apply(p, m, arg));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.SetLabel(object_kind_name(kind));
    state.counters["errors"] =
        benchmark::Counter(static_cast<double>(se->error_count()));
  }
}

BENCHMARK(BM_SelfEnforcedObject)
    ->Arg(0)
    ->Arg(2)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Iterations(20000);

// Certificate extraction cost versus accumulated history size (Theorem
// 8.2(3) is "on demand" — this prices the demand).
void BM_CertificateCost(benchmark::State& state) {
  StepCounter::set_enabled(false);
  auto impl = make_ms_queue();
  auto obj = make_linearizable_object(make_queue_spec());
  SelfEnforced se(2, *impl, *obj);
  Rng rng(5);
  int64_t ops = state.range(0);
  for (int64_t i = 0; i < ops; ++i) {
    auto [m, arg] = random_op(ObjectKind::kQueue, rng);
    se.apply(static_cast<ProcId>(i % 2), m, arg);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(se.certificate(0));
  }
  state.SetLabel("history=" + std::to_string(ops));
}

BENCHMARK(BM_CertificateCost)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
