// B3 — Theorem 8.2(1): self-enforced throughput/latency versus the raw
// implementation across thread counts and object families.  The enforcement
// tax = A* overhead + publish + incremental membership check.  Expected
// shape: a constant-factor slowdown that grows mildly with threads (bigger
// sketches per check), never a progress loss.
#include <benchmark/benchmark.h>

#include "selin/selin.hpp"

namespace {

using namespace selin;

ObjectKind kind_of(int64_t i) {
  switch (i) {
    case 0: return ObjectKind::kQueue;
    case 1: return ObjectKind::kStack;
    case 2: return ObjectKind::kCounter;
    default: return ObjectKind::kRegister;
  }
}

void BM_RawObject(benchmark::State& state) {
  static std::unique_ptr<IConcurrent> impl;
  ObjectKind kind = kind_of(state.range(0));
  if (state.thread_index() == 0) {
    StepCounter::set_enabled(false);
    impl = make_correct_impl(kind);
  }
  auto p = static_cast<ProcId>(state.thread_index());
  Rng rng(p * 11 + 3);
  uint32_t seq = 0;
  for (auto _ : state) {
    auto [m, arg] = random_op(kind, rng);
    benchmark::DoNotOptimize(impl->apply(p, OpDesc{OpId{p, seq++}, m, arg}));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) state.SetLabel(object_kind_name(kind));
}

BENCHMARK(BM_RawObject)->Arg(0)->Arg(2)->ThreadRange(1, 8)->UseRealTime();

void BM_SelfEnforcedObject(benchmark::State& state) {
  static std::unique_ptr<IConcurrent> impl;
  static std::unique_ptr<GenLinObject> obj;
  static std::unique_ptr<SelfEnforced> se;
  ObjectKind kind = kind_of(state.range(0));
  if (state.thread_index() == 0) {
    StepCounter::set_enabled(false);
    impl = make_correct_impl(kind);
    obj = make_linearizable_object(make_spec(kind));
    se = std::make_unique<SelfEnforced>(
        static_cast<size_t>(state.threads()), *impl, *obj);
  }
  auto p = static_cast<ProcId>(state.thread_index());
  Rng rng(p * 11 + 3);
  for (auto _ : state) {
    auto [m, arg] = random_op(kind, rng);
    benchmark::DoNotOptimize(se->apply(p, m, arg));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.SetLabel(object_kind_name(kind));
    state.counters["errors"] =
        benchmark::Counter(static_cast<double>(se->error_count()));
  }
}

BENCHMARK(BM_SelfEnforcedObject)
    ->Arg(0)
    ->Arg(2)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Iterations(20000);

// Certificate extraction cost versus accumulated history size (Theorem
// 8.2(3) is "on demand" — this prices the demand).
void BM_CertificateCost(benchmark::State& state) {
  StepCounter::set_enabled(false);
  auto impl = make_ms_queue();
  auto obj = make_linearizable_object(make_queue_spec());
  SelfEnforced se(2, *impl, *obj);
  Rng rng(5);
  int64_t ops = state.range(0);
  for (int64_t i = 0; i < ops; ++i) {
    auto [m, arg] = random_op(ObjectKind::kQueue, rng);
    se.apply(static_cast<ProcId>(i % 2), m, arg);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(se.certificate(0));
  }
  state.SetLabel("history=" + std::to_string(ops));
}

BENCHMARK(BM_CertificateCost)->Arg(100)->Arg(1000)->Arg(10000);

// The `enforced` facet's A/B: verified-op throughput of the seed-era
// sequential enforcement discipline versus the ported engine paths, same
// host, same single-driver schedule over kProcs process slots.
//
//   mode 0  seed-coupled    SelfEnforced, sequential defaults: every apply
//                           pays an inline membership pass whose merge
//                           spans everything published since that process
//                           slot last checked (~kProcs records).
//   mode 1  ported-coupled  same deployment on the engine knobs — the
//                           resync feeds its dirty batch through
//                           feed_batch, so the merge amortizes closure work
//                           across the batch.
//   mode 2  ported-decoupled  Decoupled with one shared verifier pass per
//                           kBatch applies (Figure 12's deployment): the
//                           pass merges the whole backlog as one dirty
//                           batch, ~1 level fed per op.  Iterations is a
//                           multiple of kBatch, so the last pass lands on
//                           the final iteration and every op is verified
//                           inside the timed region.
//
// items/s = verified operations per second in every mode; the facet's
// speedup_vs_seed row in BENCH_lincheck.json is mode N / mode 0.
void BM_EnforcedVerifiedOps(benchmark::State& state) {
  StepCounter::set_enabled(false);
  const int64_t mode = state.range(0);
  constexpr size_t kProcs = 16;
  constexpr int64_t kBatch = 256;
  auto impl = make_ms_queue();
  auto obj = make_linearizable_object(make_queue_spec());
  std::unique_ptr<SelfEnforced> se;
  std::unique_ptr<Decoupled> dec;
  if (mode == 2) {
    Decoupled::Options opts;
    opts.checker_threads = engine::kAutoTunedThreads;
    dec = std::make_unique<Decoupled>(kProcs, 1, *impl, *obj,
                                      Decoupled::ErrorReport{}, opts);
  } else {
    SelfEnforced::Options opts;
    if (mode == 1) opts.checker_threads = engine::kAutoTunedThreads;
    se = std::make_unique<SelfEnforced>(kProcs, *impl, *obj, opts);
  }
  Rng rng(9);
  uint64_t errors = 0;
  int64_t i = 0;
  for (auto _ : state) {
    auto [m, arg] = random_op(ObjectKind::kQueue, rng);
    auto p = static_cast<ProcId>(i % kProcs);
    if (mode == 2) {
      benchmark::DoNotOptimize(dec->apply(p, m, arg));
      if (++i % kBatch == 0) benchmark::DoNotOptimize(dec->verify_once(0));
    } else {
      benchmark::DoNotOptimize(se->apply(p, m, arg));
      ++i;
    }
  }
  if (mode == 2) {
    if (i % kBatch != 0) dec->verify_once(0);  // cover a partial tail
    errors = dec->error_count();
  } else {
    errors = se->error_count();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["errors"] = benchmark::Counter(static_cast<double>(errors));
  state.SetLabel(mode == 0   ? "seed-coupled"
                 : mode == 1 ? "ported-coupled"
                             : "ported-decoupled");
}

BENCHMARK(BM_EnforcedVerifiedOps)->Arg(0)->Arg(1)->Arg(2)->Iterations(8192);

}  // namespace
