// Multi-tenant service throughput (the `multi_session` facet of
// BENCH_lincheck.json): aggregate verified events/sec of N independent
// sessions multiplexed over a shared executor with L worker lanes.
//
// Sessions are embarrassingly parallel — each owns its monitor, dedup
// arenas, and frontier — so aggregate throughput should scale with sessions
// until the executor's lanes saturate the cores, while total threads stay
// pinned at L however many sessions are open (the service contract
// tests/service_test.cpp asserts).  On hosts with cores < lanes the sweep
// measures scheduling overhead, not scaling; run_bench.sh records num_cpus
// alongside for that reason, and the CI bench-scaling job re-records this
// facet on the multi-core runner.
//
// BM_BatchedFeedAmortization isolates the other half of this PR's pipeline:
// the same event stream fed per-event versus in service-sized batches
// through one monitor — the batch path runs one closure per run of
// consecutive responses instead of one per response.
#include <benchmark/benchmark.h>

#include "selin/selin.hpp"

namespace {

using namespace selin;

// Linearizable-by-construction random history, concurrency window capped at
// 2 (the realistic wait-free shape; bench_lincheck documents the cap).
History make_session_history(ObjectKind kind, size_t n_procs, size_t ops,
                             uint64_t seed) {
  Rng rng(seed);
  auto spec = make_spec(kind);
  auto state = spec->initial();
  History h;
  struct Pend {
    OpDesc op;
    Value result;
  };
  std::vector<std::optional<Pend>> pend(n_procs);
  std::vector<uint32_t> seq(n_procs, 0);
  size_t invoked = 0;
  size_t open = 0;
  while (invoked < ops || open > 0) {
    ProcId p = static_cast<ProcId>(rng.below(n_procs));
    if (!pend[p].has_value()) {
      if (invoked >= ops || open >= 2) continue;
      auto [m, arg] = random_op(kind, rng);
      OpDesc d{OpId{p, seq[p]++}, m, arg};
      h.push_back(Event::inv(d));
      pend[p] = Pend{d, state->step(m, arg)};
      ++invoked;
      ++open;
    } else if (rng.chance(2, 3)) {
      h.push_back(Event::res(pend[p]->op, pend[p]->result));
      pend[p].reset();
      --open;
    }
  }
  return h;
}

constexpr ObjectKind kSessionKinds[] = {
    ObjectKind::kQueue, ObjectKind::kCounter, ObjectKind::kRegister,
    ObjectKind::kSet,
};

void BM_MultiSessionThroughput(benchmark::State& state) {
  const size_t sessions = static_cast<size_t>(state.range(0));
  const size_t lanes = static_cast<size_t>(state.range(1));
  constexpr size_t kOpsPerSession = 256;

  std::vector<History> histories;
  histories.reserve(sessions);
  for (size_t i = 0; i < sessions; ++i) {
    histories.push_back(make_session_history(
        kSessionKinds[i % std::size(kSessionKinds)], 3, kOpsPerSession,
        42 + i * 13));
  }

  uint64_t events = 0;
  for (auto _ : state) {
    service::ServiceOptions opts;
    opts.lanes = lanes;
    opts.batch_limit = 256;
    service::MonitorService svc(opts);
    for (size_t i = 0; i < sessions; ++i) {
      svc.open("s" + std::to_string(i),
               make_spec(kSessionKinds[i % std::size(kSessionKinds)]));
      svc.feed(i, std::span<const Event>(histories[i].data(),
                                         histories[i].size()));
    }
    svc.drain();
    for (size_t i = 0; i < sessions; ++i) {
      benchmark::DoNotOptimize(svc.session(i).ok());
      events += svc.session(i).events_fed();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.SetLabel("sessions=" + std::to_string(sessions) +
                 "/lanes=" + std::to_string(lanes));
}

BENCHMARK(BM_MultiSessionThroughput)
    ->ArgsProduct({{1, 4, 16}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Per-event versus batched feeding of one stream through one sequential
// monitor: arg 0 = per-event, arg N = feed_batch in N-event chunks.
void BM_BatchedFeedAmortization(benchmark::State& state) {
  const size_t chunk = static_cast<size_t>(state.range(0));
  auto spec = make_queue_spec();
  History h = make_session_history(ObjectKind::kQueue, 4, 1024, 7);
  uint64_t events = 0;
  for (auto _ : state) {
    LinMonitor m(*spec);
    if (chunk == 0) {
      for (const Event& e : h) m.feed(e);
    } else {
      for (size_t i = 0; i < h.size(); i += chunk) {
        m.feed_batch({h.data() + i, std::min(chunk, h.size() - i)});
      }
    }
    benchmark::DoNotOptimize(m.ok());
    events += h.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.SetLabel(chunk == 0 ? "per-event"
                            : "batch=" + std::to_string(chunk));
}

BENCHMARK(BM_BatchedFeedAmortization)->Arg(0)->Arg(64)->Arg(256);

}  // namespace
