// Parallel checkpoint replay in the leveled checker.
//
//  BM_LeveledRollbackStorm — the tentpole workload: a prompt spine of
//      levels carrying a set of pending invocations wide enough to engage
//      the sharded frontier engine, followed by a storm of straggler
//      records that each land mid-history and force a rollback+replay.
//      Swept over the lane count: lanes=1 is the fully sequential
//      discipline (sequential monitors, inline checkpoints); lanes=N runs
//      the replayed monitors with engine::auto_threads(N) and defers
//      checkpoint materialization to snapshot lanes.  Scaling requires
//      cores >= lanes — the recorded facet carries num_cpus so single-core
//      hosts aren't misread as regressions.
//
//  BM_LeveledSnapshotMode — isolates the deferred-snapshotting half: an
//      append-only feed over a persistently wide frontier, inline
//      checkpoint clones (mode=0) vs async stripe rebuild (mode=1).  The
//      async arm clones on the feed path only once per
//      LeveledChecker::kStripe boundaries.
#include <benchmark/benchmark.h>

#include "selin/engine/stats.hpp"
#include "selin/selin.hpp"

namespace {

using namespace selin;

// λ-records for a spine of `spine_ops` prompt operations by process 0 with
// `stragglers` other processes that each announce one operation early (their
// pending invocations ride every later view) and publish its record only
// after the spine has drained — the rollback storm.  Priority-queue inserts
// with distinct arguments keep the open-op subsets distinct while the
// resulting states stay order-insensitive (a multiset, unlike a queue whose
// open-op *orderings* would explode), so the frontier holds ~2^stragglers
// configurations while the stragglers are missing.
struct StormWorkload {
  std::vector<std::unique_ptr<SetNode>> nodes;
  std::vector<LambdaRecord> spine;      // publish first, in order
  std::vector<LambdaRecord> stragglers;  // publish last, oldest first
};

StormWorkload make_storm(size_t spine_ops, size_t stragglers) {
  StormWorkload w;
  const size_t procs = 1 + stragglers;
  std::vector<const SetNode*> heads(procs, nullptr);
  auto spec = make_pqueue_spec();
  auto state = spec->initial();
  auto announce = [&](ProcId p, uint32_t seq, Method m, Value arg) {
    OpDesc op{OpId{p, seq}, m, arg};
    w.nodes.push_back(std::make_unique<SetNode>(SetNode{
        op, heads[p], heads[p] == nullptr ? 1u : heads[p]->len + 1}));
    heads[p] = w.nodes.back().get();
    return LambdaRecord{op, state->step(m, arg), View(heads)};
  };
  for (uint32_t i = 0; i < spine_ops; ++i) {
    if (i >= 8 && i < 8 + stragglers) {
      // One early op per straggler process, an insert with a distinct value.
      w.stragglers.push_back(announce(static_cast<ProcId>(i - 8 + 1), 0,
                                      Method::kPqInsert,
                                      1000 + static_cast<Value>(i)));
    }
    w.spine.push_back(
        announce(0, i, Method::kPqInsert, 1 + static_cast<Value>(i)));
  }
  return w;
}

void run_checker(const StormWorkload& w, const LeveledChecker::Options& opts,
                 const GenLinObject& obj) {
  XBuilder builder;
  LeveledChecker checker(obj, opts);
  for (const LambdaRecord& r : w.spine) {
    benchmark::DoNotOptimize(checker.resync(builder, builder.add(&r)));
  }
  for (const LambdaRecord& r : w.stragglers) {
    benchmark::DoNotOptimize(checker.resync(builder, builder.add(&r)));
  }
}

void BM_LeveledRollbackStorm(benchmark::State& state) {
  const size_t lanes = static_cast<size_t>(state.range(0));
  StormWorkload w = make_storm(/*spine_ops=*/88, /*stragglers=*/10);
  auto obj = make_linearizable_object(make_pqueue_spec(), /*max_configs=*/
                                      1 << 18);
  LeveledChecker::Options opts;
  opts.stride = LeveledChecker::kDefaultStride;
  if (lanes <= 1) {
    opts.threads = 1;
    opts.snapshot_lanes = 0;
  } else {
    opts.threads = engine::auto_threads(lanes);
    opts.snapshot_lanes = 2;
  }
  for (auto _ : state) {
    run_checker(w, opts, *obj);
  }
  state.SetLabel("lanes=" + std::to_string(lanes));
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() *
                           (w.spine.size() + w.stragglers.size())));
}

BENCHMARK(BM_LeveledRollbackStorm)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_LeveledSnapshotMode(benchmark::State& state) {
  const bool async = state.range(0) == 1;
  // Wide steady frontier (8 permanently pending invocations), append-only:
  // no rollbacks, so the arms differ only in where checkpoint clones run.
  StormWorkload w = make_storm(/*spine_ops=*/160, /*stragglers=*/8);
  auto obj = make_linearizable_object(make_pqueue_spec(), 1 << 18);
  LeveledChecker::Options opts;
  opts.stride = 8;
  opts.threads = 1;
  opts.snapshot_lanes = async ? 2 : 0;
  for (auto _ : state) {
    XBuilder builder;
    LeveledChecker checker(*obj, opts);
    for (const LambdaRecord& r : w.spine) {
      benchmark::DoNotOptimize(checker.resync(builder, builder.add(&r)));
    }
  }
  state.SetLabel(async ? "async-stripes" : "inline");
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * w.spine.size()));
}

BENCHMARK(BM_LeveledSnapshotMode)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
