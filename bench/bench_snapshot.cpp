// B6 — snapshot substrate scaling.
//
// Measures Write and Scan throughput of the three snapshot implementations
// as the number of concurrent processes grows.  Expected shape: the mutex
// baseline collapses under contention; double-collect scans degrade with
// writers (retries); Afek stays wait-free with an O(n^2) constant.
#include <benchmark/benchmark.h>

#include <thread>

#include "selin/selin.hpp"

namespace {

using namespace selin;

SnapshotKind kind_of(int64_t i) {
  switch (i) {
    case 0: return SnapshotKind::kMutex;
    case 1: return SnapshotKind::kDoubleCollect;
    default: return SnapshotKind::kAfek;
  }
}

void BM_SnapshotWriteScan(benchmark::State& state) {
  static std::unique_ptr<Snapshot<uint64_t>> snap;
  if (state.thread_index() == 0) {
    StepCounter::set_enabled(false);
    snap = make_snapshot<uint64_t>(kind_of(state.range(0)),
                                   static_cast<size_t>(state.threads()), 0);
  }
  auto p = static_cast<ProcId>(state.thread_index());
  uint64_t v = 0;
  for (auto _ : state) {
    snap->write(p, ++v);
    benchmark::DoNotOptimize(snap->scan(p));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.SetLabel(snapshot_kind_name(kind_of(state.range(0))));
  }
}

BENCHMARK(BM_SnapshotWriteScan)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ThreadRange(1, 8)
    ->UseRealTime();

void BM_SnapshotScanOnly(benchmark::State& state) {
  static std::unique_ptr<Snapshot<uint64_t>> snap;
  static std::atomic<bool> stop;
  static std::thread writer;
  if (state.thread_index() == 0) {
    StepCounter::set_enabled(false);
    size_t n = static_cast<size_t>(state.threads()) + 1;
    snap = make_snapshot<uint64_t>(kind_of(state.range(0)), n, 0);
    stop.store(false);
    // One background writer supplies continuous interference.
    writer = std::thread([n] {
      uint64_t v = 0;
      while (!stop.load(std::memory_order_acquire)) {
        snap->write(static_cast<ProcId>(n - 1), ++v);
      }
    });
  }
  auto p = static_cast<ProcId>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(snap->scan(p));
  }
  if (state.thread_index() == 0) {
    stop.store(true, std::memory_order_release);
    writer.join();
    state.SetLabel(snapshot_kind_name(kind_of(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_SnapshotScanOnly)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ThreadRange(1, 4)
    ->UseRealTime();

// Step complexity of one Write+Scan pair versus n (solo run): the O(n) vs
// O(n^2) separation between double-collect and Afek.
void BM_SnapshotStepsVsN(benchmark::State& state) {
  StepCounter::set_enabled(true);
  size_t n = static_cast<size_t>(state.range(1));
  auto snap = make_snapshot<uint64_t>(kind_of(state.range(0)), n, 0);
  uint64_t v = 0;
  uint64_t total_steps = 0, ops = 0;
  for (auto _ : state) {
    StepProbe probe;
    snap->write(0, ++v);
    benchmark::DoNotOptimize(snap->scan(0));
    total_steps += probe.steps();
    ++ops;
  }
  state.counters["steps_per_op"] =
      benchmark::Counter(static_cast<double>(total_steps) /
                         static_cast<double>(ops));
  state.SetLabel(std::string(snapshot_kind_name(kind_of(state.range(0)))) +
                 "/n=" + std::to_string(n));
  StepCounter::set_enabled(false);
}

BENCHMARK(BM_SnapshotStepsVsN)
    ->ArgsProduct({{1, 2}, {2, 4, 8, 16, 32}});

}  // namespace
