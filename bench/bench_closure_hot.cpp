// closure_hot facet — the data-oriented closure hot path in isolation
// (PR 8: SoA frontier rows, batched prefetched dedup probes, in-place
// response filtering).
//
// Two workload arms, each run with the dedup-probe prefetch on and off so
// the A/B lands in one JSON recording:
//
//  * dup-heavy — bursts of distinct-value set inserts.  Set content is
//    order-independent and every insert of a fresh value answers true, so
//    all m! linearization orders of the same m-op subset converge on one
//    configuration: closure emits C(k, m)·m candidates per level but only
//    C(k, m) survive, and ~3/4 of probes are dedup *hits* — the
//    probe/clone split (fingerprint first, clone only when fresh) and the
//    batched probe loop are the whole cost.
//
//  * dup-light — bursts of distinct-value enqueues drained by FIFO
//    dequeues.  Queue content distinguishes every emission order, so
//    probes miss, every candidate materializes, and the response-filter
//    swap-partition walks a genuinely wide frontier each drain step.
//
// The prefetch=off arms exist for the counter contrast (prefetch_batches
// stays 0) and as an A/B guard: on a host where prefetching hurts, the
// recording shows it.  Timings of *on vs off* on a 1-core shared runner
// are indicative, not gated; the gate treats each arm as its own row.
#include <benchmark/benchmark.h>

#include "selin/selin.hpp"
#include "selin/util/fp_set.hpp"

namespace {

using namespace selin;

// `rounds` bursts of `width` simultaneously open distinct-value inserts;
// responses close in announcement order.  Closure emissions per burst are
// exponential in width, surviving configurations are not (orders
// converge), so the frontier collapses to one configuration per round.
History dup_heavy_history(size_t rounds, size_t width) {
  auto spec = make_set_spec();
  auto st = spec->initial();
  History h;
  std::vector<uint32_t> seq(width, 0);
  Value v = 1;
  for (size_t r = 0; r < rounds; ++r) {
    std::vector<std::pair<OpDesc, Value>> open;
    for (size_t p = 0; p < width; ++p) {
      OpDesc d{OpId{static_cast<ProcId>(p), seq[p]++}, Method::kInsert, v++};
      h.push_back(Event::inv(d));
      open.push_back({d, st->step(d.method, d.arg)});
    }
    for (const auto& [d, res] : open) h.push_back(Event::res(d, res));
  }
  return h;
}

// `rounds` bursts of `width` open enqueues with distinct values, each
// burst drained by `width` sequential FIFO dequeues (the drain collapses
// the frontier back to one configuration, so rounds compose instead of
// multiplying).
History dup_light_history(size_t rounds, size_t width) {
  auto spec = make_queue_spec();
  auto st = spec->initial();
  History h;
  std::vector<uint32_t> seq(width + 1, 0);
  Value v = 1;
  for (size_t r = 0; r < rounds; ++r) {
    std::vector<std::pair<OpDesc, Value>> open;
    for (size_t p = 0; p < width; ++p) {
      OpDesc d{OpId{static_cast<ProcId>(p), seq[p]++}, Method::kEnqueue, v++};
      h.push_back(Event::inv(d));
      open.push_back({d, st->step(d.method, d.arg)});
    }
    for (const auto& [d, res] : open) h.push_back(Event::res(d, res));
    const ProcId drainer = static_cast<ProcId>(width);
    for (size_t k = 0; k < width; ++k) {
      OpDesc d{OpId{drainer, seq[width]++}, Method::kDequeue, 0};
      Value res = st->step(d.method, d.arg);
      h.push_back(Event::inv(d));
      h.push_back(Event::res(d, res));
    }
  }
  return h;
}

void run_arm(benchmark::State& state, const SeqSpec& spec, const History& h,
             const char* arm) {
  const bool prefetch = state.range(0) != 0;
  FpSet::set_prefetch(prefetch);
  engine::EngineStats last{};
  uint64_t events = 0;
  for (auto _ : state) {
    LinMonitor m(spec);
    for (const Event& e : h) m.feed(e);
    benchmark::DoNotOptimize(m.ok());
    last = m.stats();
    events += h.size();
  }
  FpSet::set_prefetch(true);  // process-global: restore the default
  state.SetItemsProcessed(static_cast<int64_t>(events));
  const double probes = static_cast<double>(last.dedup_probes);
  state.counters["dedup_probes"] = probes;
  state.counters["dedup_hit_rate"] =
      probes > 0 ? static_cast<double>(last.dedup_hits) / probes : 0.0;
  state.counters["probe_batches"] = static_cast<double>(last.probe_batches);
  state.counters["prefetch_batches"] =
      static_cast<double>(last.prefetch_batches);
  state.counters["filter_in_place_rounds"] =
      static_cast<double>(last.filter_in_place_rounds);
  state.SetLabel(std::string(arm) + "/prefetch=" + (prefetch ? "on" : "off"));
}

void BM_ClosureHotDupHeavy(benchmark::State& state) {
  auto spec = make_set_spec();
  History h = dup_heavy_history(/*rounds=*/24, /*width=*/8);
  run_arm(state, *spec, h, "dup_heavy");
}

// {0, 1}: dedup-probe prefetch off / on (FpSet::set_prefetch).
BENCHMARK(BM_ClosureHotDupHeavy)->Arg(1)->Arg(0);

void BM_ClosureHotDupLight(benchmark::State& state) {
  auto spec = make_queue_spec();
  History h = dup_light_history(/*rounds=*/16, /*width=*/6);
  run_arm(state, *spec, h, "dup_light");
}

BENCHMARK(BM_ClosureHotDupLight)->Arg(1)->Arg(0);

}  // namespace

BENCHMARK_MAIN();
