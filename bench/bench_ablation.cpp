// Ablation studies for the design choices DESIGN.md calls out:
//
//  A1 — LeveledChecker checkpoint stride: rollback replay cost vs checkpoint
//       clone cost, under workloads with late middle-level records.
//  A2 — incremental leveled checking vs naive from-scratch re-check per
//       operation (the optimization the verifier's per-op cost rests on).
//  A3 — linked-list set representation (Section 9.1) vs copying whole sets
//       into the registers on every announcement (the unbounded-register
//       strawman the paper starts from).
#include <benchmark/benchmark.h>

#include "selin/selin.hpp"

namespace {

using namespace selin;

// Build a batch of records with occasional "late" records (small views
// published after larger ones), mimicking slow verifier-side writes.
struct RecordBatch {
  std::vector<std::unique_ptr<SetNode>> nodes;
  std::vector<LambdaRecord> records;
  std::vector<size_t> publish_order;
};

RecordBatch make_batch(size_t ops, uint64_t seed, uint64_t late_every) {
  RecordBatch b;
  std::vector<const SetNode*> heads(2, nullptr);
  Rng rng(seed);
  auto spec = make_queue_spec();
  auto state = spec->initial();
  for (uint32_t i = 0; i < ops; ++i) {
    ProcId p = i % 2;
    auto [m, arg] = random_op(ObjectKind::kQueue, rng);
    OpDesc op{OpId{p, i / 2}, m, arg};
    b.nodes.push_back(std::make_unique<SetNode>(SetNode{
        op, heads[p], heads[p] == nullptr ? 1u : heads[p]->len + 1}));
    heads[p] = b.nodes.back().get();
    Value y = state->step(m, arg);
    b.records.push_back(LambdaRecord{op, y, View(heads)});
  }
  // Publish order: mostly in order, but every `late_every`-th record is
  // delayed by a few positions.
  for (size_t i = 0; i < ops; ++i) b.publish_order.push_back(i);
  if (late_every > 0) {
    for (size_t i = 0; i + 3 < ops; i += late_every) {
      std::swap(b.publish_order[i], b.publish_order[i + 3]);
    }
  }
  return b;
}

// A1: stride sweep.
void BM_CheckpointStride(benchmark::State& state) {
  size_t stride = static_cast<size_t>(state.range(0));
  RecordBatch batch = make_batch(600, 5, /*late_every=*/7);
  auto obj = make_linearizable_object(make_queue_spec());
  for (auto _ : state) {
    XBuilder builder;
    LeveledChecker checker(*obj, stride);
    for (size_t i : batch.publish_order) {
      size_t lvl = builder.add(&batch.records[i]);
      benchmark::DoNotOptimize(checker.resync(builder, lvl));
    }
  }
  state.SetLabel("stride=" + std::to_string(stride));
  state.SetItemsProcessed(state.iterations() * 600);
}

BENCHMARK(BM_CheckpointStride)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// A2: incremental vs from-scratch membership per operation.
void BM_IncrementalVsScratch(benchmark::State& state) {
  bool incremental = state.range(0) == 1;
  RecordBatch batch = make_batch(300, 6, 0);
  auto obj = make_linearizable_object(make_queue_spec());
  for (auto _ : state) {
    XBuilder builder;
    LeveledChecker checker(*obj, 16);
    for (size_t i : batch.publish_order) {
      size_t lvl = builder.add(&batch.records[i]);
      if (incremental) {
        benchmark::DoNotOptimize(checker.resync(builder, lvl));
      } else {
        benchmark::DoNotOptimize(obj->contains(builder.flatten()));
      }
    }
  }
  state.SetLabel(incremental ? "incremental" : "from-scratch");
  state.SetItemsProcessed(state.iterations() * 300);
}

BENCHMARK(BM_IncrementalVsScratch)->Arg(1)->Arg(0);

// A3: pointer-chain announcements (Section 9.1) vs copying the whole set
// value into the register per announcement.  We emulate the copying variant
// by materializing the view into a sorted vector each operation — the cost
// the linked-list representation avoids.
void BM_AnnouncementRepresentation(benchmark::State& state) {
  bool copying = state.range(0) == 1;
  auto q = make_ms_queue();
  AStar astar(2, *q);
  Rng rng(7);
  uint64_t processed = 0;
  for (auto _ : state) {
    auto [m, arg] = random_op(ObjectKind::kQueue, rng);
    auto r = astar.apply(0, m, arg);
    if (copying) {
      benchmark::DoNotOptimize(r.view.materialize());  // O(history) copy
    } else {
      benchmark::DoNotOptimize(r.view.size());         // O(n) heads only
    }
    ++processed;
  }
  state.SetLabel(copying ? "copy-sets" : "pointer-chains");
  state.SetItemsProcessed(static_cast<int64_t>(processed));
}

BENCHMARK(BM_AnnouncementRepresentation)->Arg(0)->Arg(1)->Iterations(20000);

}  // namespace
