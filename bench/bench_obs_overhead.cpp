// Instrumentation overhead of the observability plane on the lincheck hot
// path (ISSUE 7 acceptance: <= 2% on the incremental monitor's per-event
// median with metrics attached).
//
// Three arms over the same linearizable queue history, keyed by Arg:
//   0 = detached      — hooks pointer null, the one-branch baseline
//   1 = metrics       — EngineHooks with sharded histograms, no trace sink
//   2 = metrics+trace — same bundle plus a RingRecorder flight recorder
//
// The loop is BM_IncrementalMonitorPerEvent's shape (one feed per
// iteration, fresh monitor outside timing when the history is exhausted) so
// the recorded items_per_second are directly comparable across arms; the
// obs_overhead facet in BENCH_lincheck.json stores the per-arm throughput
// and the relative overhead vs arm 0 (see tools/run_bench.sh).
#include <benchmark/benchmark.h>

#include <memory>
#include <optional>
#include <vector>

#include "selin/obs/hooks.hpp"
#include "selin/obs/metrics.hpp"
#include "selin/obs/trace.hpp"
#include "selin/selin.hpp"

namespace {

using namespace selin;

// Linearizable-by-construction random history (the bench_lincheck
// generator: concurrency window capped at 2 so the frontier stays narrow
// and the per-event cost is the steady-state one, not a blow-up).
History make_history(ObjectKind kind, size_t n_procs, size_t ops,
                     uint64_t seed) {
  Rng rng(seed);
  auto spec = make_spec(kind);
  auto state = spec->initial();
  History h;
  struct Pend {
    OpDesc op;
    Value result;
  };
  std::vector<std::optional<Pend>> pend(n_procs);
  std::vector<uint32_t> seq(n_procs, 0);
  size_t invoked = 0;
  size_t open = 0;
  while (invoked < ops || open > 0) {
    ProcId p = static_cast<ProcId>(rng.below(n_procs));
    if (!pend[p].has_value()) {
      if (invoked >= ops || open >= 2) continue;
      auto [m, arg] = random_op(kind, rng);
      OpDesc d{OpId{p, seq[p]++}, m, arg};
      h.push_back(Event::inv(d));
      pend[p] = Pend{d, state->step(m, arg)};
      ++invoked;
      ++open;
    } else if (rng.chance(2, 3)) {
      h.push_back(Event::res(pend[p]->op, pend[p]->result));
      pend[p].reset();
      --open;
    }
  }
  return h;
}

void BM_ObsOverhead(benchmark::State& state) {
  const int arm = static_cast<int>(state.range(0));
  auto spec = make_queue_spec();
  History h = make_history(ObjectKind::kQueue, 4, 512, 11);

  // Plane lifetime spans the whole run: the registry keeps aggregating
  // across monitor restarts (exactly how a long-lived service uses it) and
  // the ring wraps, so steady-state record cost — not allocation — is what
  // the timed loop pays.
  obs::MetricsRegistry reg;
  obs::RingRecorder ring(4096);
  obs::EngineHooks hooks =
      obs::make_engine_hooks(reg, {}, arm == 2 ? &ring : nullptr);
  const obs::EngineHooks* attach = arm == 0 ? nullptr : &hooks;

  auto m = std::make_unique<LinMonitor>(*spec);
  m->attach_obs(attach);
  size_t i = 0;
  uint64_t events = 0;
  for (auto _ : state) {
    if (i == h.size()) {  // restart on a fresh monitor
      state.PauseTiming();
      m = std::make_unique<LinMonitor>(*spec);
      m->attach_obs(attach);
      i = 0;
      state.ResumeTiming();
    }
    m->feed(h[i++]);
    ++events;
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.SetLabel(arm == 0 ? "detached"
                          : (arm == 1 ? "metrics" : "metrics+trace"));
}

BENCHMARK(BM_ObsOverhead)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
