// B4 — Section 9.2: decoupling production from verification.
//
// Producer-side comparison: V_{O,A} (every process checks after every
// operation, Figure 11) versus D_{O,A} (producers only publish; verifier
// threads check, Figure 12).  Expected shape: decoupled producer latency
// approaches the bare A* cost, while the coupled version pays the membership
// test inline.
#include <benchmark/benchmark.h>

#include <thread>

#include "selin/selin.hpp"

namespace {

using namespace selin;

void BM_CoupledProducer(benchmark::State& state) {
  static std::unique_ptr<IConcurrent> impl;
  static std::unique_ptr<GenLinObject> obj;
  static std::unique_ptr<SelfEnforced> se;
  if (state.thread_index() == 0) {
    StepCounter::set_enabled(false);
    impl = make_ms_queue();
    obj = make_linearizable_object(make_queue_spec());
    se = std::make_unique<SelfEnforced>(
        static_cast<size_t>(state.threads()), *impl, *obj);
  }
  auto p = static_cast<ProcId>(state.thread_index());
  Rng rng(p * 5 + 7);
  for (auto _ : state) {
    auto [m, arg] = random_op(ObjectKind::kQueue, rng);
    benchmark::DoNotOptimize(se->apply(p, m, arg));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_CoupledProducer)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Iterations(10000);

void BM_DecoupledProducer(benchmark::State& state) {
  static std::unique_ptr<IConcurrent> impl;
  static std::unique_ptr<GenLinObject> obj;
  static std::unique_ptr<Decoupled> d;
  static std::atomic<bool> stop;
  static std::thread verifier;
  if (state.thread_index() == 0) {
    StepCounter::set_enabled(false);
    impl = make_ms_queue();
    obj = make_linearizable_object(make_queue_spec());
    d = std::make_unique<Decoupled>(static_cast<size_t>(state.threads()),
                                    /*n_verifiers=*/1, *impl, *obj);
    stop.store(false);
    verifier = std::thread([] {
      while (!stop.load(std::memory_order_acquire)) d->verify_once(0);
    });
  }
  auto p = static_cast<ProcId>(state.thread_index());
  Rng rng(p * 5 + 7);
  for (auto _ : state) {
    auto [m, arg] = random_op(ObjectKind::kQueue, rng);
    benchmark::DoNotOptimize(d->apply(p, m, arg));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    stop.store(true, std::memory_order_release);
    verifier.join();
    state.counters["errors"] =
        benchmark::Counter(static_cast<double>(d->error_count()));
  }
}

BENCHMARK(BM_DecoupledProducer)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Iterations(10000);

// Verifier-side: cost of one verify_once pass as the backlog of unseen
// records grows (detection-lag pricing).
void BM_VerifierPassVsBacklog(benchmark::State& state) {
  StepCounter::set_enabled(false);
  int64_t backlog = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    auto impl = make_ms_queue();
    auto obj = make_linearizable_object(make_queue_spec());
    Decoupled d(2, 1, *impl, *obj);
    Rng rng(11);
    for (int64_t i = 0; i < backlog; ++i) {
      auto [m, arg] = random_op(ObjectKind::kQueue, rng);
      d.apply(static_cast<ProcId>(i % 2), m, arg);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(d.verify_once(0));
  }
  state.SetLabel("backlog=" + std::to_string(backlog));
}

BENCHMARK(BM_VerifierPassVsBacklog)->Arg(10)->Arg(100)->Arg(1000);

// Batch amortization on the ported engine path: total cost of producing
// AND verifying a fixed op stream when the verifier passes every k applies
// (k=1 is the coupled-equivalent cadence; larger k approaches one level
// fed per op — the shape the `enforced` facet records as its decoupled
// arm).
void BM_VerifierBatchAmortization(benchmark::State& state) {
  StepCounter::set_enabled(false);
  const int64_t k = state.range(0);
  constexpr int64_t kOps = 2048;
  for (auto _ : state) {
    state.PauseTiming();
    auto impl = make_ms_queue();
    auto obj = make_linearizable_object(make_queue_spec());
    Decoupled::Options opts;
    opts.checker_threads = engine::kAutoTunedThreads;
    Decoupled d(8, 1, *impl, *obj, Decoupled::ErrorReport{}, opts);
    Rng rng(13);
    state.ResumeTiming();
    for (int64_t i = 0; i < kOps; ++i) {
      auto [m, arg] = random_op(ObjectKind::kQueue, rng);
      benchmark::DoNotOptimize(d.apply(static_cast<ProcId>(i % 8), m, arg));
      if ((i + 1) % k == 0) benchmark::DoNotOptimize(d.verify_once(0));
    }
    if (kOps % k != 0) d.verify_once(0);
  }
  state.SetItemsProcessed(state.iterations() * kOps);
  state.SetLabel("verify_every=" + std::to_string(k));
}

BENCHMARK(BM_VerifierBatchAmortization)->Arg(1)->Arg(64)->Arg(512);

}  // namespace
