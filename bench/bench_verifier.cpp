// B-E9 — end-to-end verifier throughput (Figure 10) across object families
// and snapshot implementations: what a client pays per verified operation,
// all layers included (A* + publish + snapshot of M + incremental X(τ)
// membership test).
#include <benchmark/benchmark.h>

#include "selin/selin.hpp"

namespace {

using namespace selin;

ObjectKind kind_of(int64_t i) {
  switch (i) {
    case 0: return ObjectKind::kQueue;
    case 1: return ObjectKind::kStack;
    case 2: return ObjectKind::kSet;
    case 3: return ObjectKind::kCounter;
    case 4: return ObjectKind::kRegister;
    default: return ObjectKind::kConsensus;
  }
}

void BM_VerifierThroughput(benchmark::State& state) {
  static std::unique_ptr<IConcurrent> impl;
  static std::unique_ptr<GenLinObject> obj;
  static std::unique_ptr<AStar> astar;
  static std::unique_ptr<Verifier> verifier;
  ObjectKind kind = kind_of(state.range(0));
  if (state.thread_index() == 0) {
    StepCounter::set_enabled(false);
    impl = make_correct_impl(kind);
    obj = make_linearizable_object(make_spec(kind));
    astar = std::make_unique<AStar>(static_cast<size_t>(state.threads()),
                                    *impl);
    verifier = std::make_unique<Verifier>(*astar, *obj);
  }
  auto p = static_cast<ProcId>(state.thread_index());
  Rng rng(p * 13 + 17);
  for (auto _ : state) {
    auto [m, arg] = random_op(kind, rng);
    benchmark::DoNotOptimize(verifier->step(p, m, arg));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.SetLabel(object_kind_name(kind));
    state.counters["errors"] =
        benchmark::Counter(static_cast<double>(verifier->error_count()));
  }
}

BENCHMARK(BM_VerifierThroughput)
    ->DenseRange(0, 5)
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime()
    ->Iterations(10000);

// The same loop on the ported engine knobs (adaptive+tuned monitors,
// engine-recommended checkpoint priors) — the V_O arm of the enforcement
// port, re-recorded against BM_VerifierThroughput's seed-era rows.
void BM_VerifierThroughputPorted(benchmark::State& state) {
  static std::unique_ptr<IConcurrent> impl;
  static std::unique_ptr<GenLinObject> obj;
  static std::unique_ptr<AStar> astar;
  static std::unique_ptr<Verifier> verifier;
  ObjectKind kind = kind_of(state.range(0));
  if (state.thread_index() == 0) {
    StepCounter::set_enabled(false);
    impl = make_correct_impl(kind);
    obj = make_linearizable_object(make_spec(kind));
    astar = std::make_unique<AStar>(static_cast<size_t>(state.threads()),
                                    *impl);
    Verifier::Options opts;
    opts.checker_threads = engine::kAutoTunedThreads;
    opts.priors.stride = 32;  // append-only run: relax the stride
    verifier = std::make_unique<Verifier>(*astar, *obj,
                                          Verifier::ErrorReport{}, opts);
  }
  auto p = static_cast<ProcId>(state.thread_index());
  Rng rng(p * 13 + 17);
  for (auto _ : state) {
    auto [m, arg] = random_op(kind, rng);
    benchmark::DoNotOptimize(verifier->step(p, m, arg));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.SetLabel(object_kind_name(kind));
    state.counters["errors"] =
        benchmark::Counter(static_cast<double>(verifier->error_count()));
  }
}

BENCHMARK(BM_VerifierThroughputPorted)
    ->DenseRange(0, 5)
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime()
    ->Iterations(10000);

// Snapshot choice sensitivity for the full verifier loop.
void BM_VerifierSnapshotChoice(benchmark::State& state) {
  static std::unique_ptr<IConcurrent> impl;
  static std::unique_ptr<GenLinObject> obj;
  static std::unique_ptr<AStar> astar;
  static std::unique_ptr<Verifier> verifier;
  SnapshotKind snap = state.range(0) == 0 ? SnapshotKind::kDoubleCollect
                                          : SnapshotKind::kAfek;
  if (state.thread_index() == 0) {
    StepCounter::set_enabled(false);
    impl = make_ms_queue();
    obj = make_linearizable_object(make_queue_spec());
    astar = std::make_unique<AStar>(static_cast<size_t>(state.threads()),
                                    *impl, snap);
    verifier = std::make_unique<Verifier>(*astar, *obj, Verifier::ErrorReport{},
                                          snap);
  }
  auto p = static_cast<ProcId>(state.thread_index());
  Rng rng(p + 23);
  for (auto _ : state) {
    auto [m, arg] = random_op(ObjectKind::kQueue, rng);
    benchmark::DoNotOptimize(verifier->step(p, m, arg));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.SetLabel(snapshot_kind_name(snap));
  }
}

BENCHMARK(BM_VerifierSnapshotChoice)
    ->Arg(0)
    ->Arg(1)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Iterations(10000);

}  // namespace
