// B5 — completeness operationally (Theorem 8.1/8.2): detection latency.
//
// How many operations does the system execute before a silent fault is
// reported?  Swept over fault type, fault rate and process count, for both
// the coupled (Figure 11) and decoupled (Figure 12) deployments.  Expected
// shape: latency falls as the fault rate rises; the decoupled verifier adds
// a small lag but the same eventual detection.
//
// Reported via google-benchmark counters: ops_to_detect (mean over repeats).
#include <benchmark/benchmark.h>

#include <thread>

#include "selin/selin.hpp"

namespace {

using namespace selin;

std::unique_ptr<IConcurrent> make_faulty(int64_t which, uint64_t rate_den,
                                         uint64_t seed) {
  switch (which) {
    case 0: return make_lossy_queue(1, rate_den, seed);
    case 1: return make_dup_queue(1, rate_den, seed);
    default: return make_stale_counter(1, rate_den, seed);
  }
}

ObjectKind kind_for(int64_t which) {
  return which == 2 ? ObjectKind::kCounter : ObjectKind::kQueue;
}

const char* fault_name(int64_t which) {
  switch (which) {
    case 0: return "lossy-queue";
    case 1: return "dup-queue";
    default: return "stale-counter";
  }
}

// Throughput facet: per-operation cost of the coupled verification loop on a
// *correct* implementation.  Detection latency (below) is dominated by the
// seeded fault schedule and thread startup; this facet isolates what each
// verified operation actually costs — publish the λ-record, snapshot M,
// re-test membership — which is the hot path the fingerprinted configuration
// engine optimizes.  The monitor restarts every 384 ops to bound history
// growth, mirroring the sketch-level restarts of production deployments.
void BM_VerificationThroughput(benchmark::State& state) {
  StepCounter::set_enabled(false);
  bool queue = state.range(0) == 0;
  ObjectKind kind = queue ? ObjectKind::kQueue : ObjectKind::kCounter;
  constexpr size_t kProcs = 3;
  constexpr int kOpsPerRun = 384;
  Rng rng(17);
  auto impl = queue ? make_ms_queue() : make_atomic_counter();
  auto obj = make_linearizable_object(make_spec(kind));
  auto se = std::make_unique<SelfEnforced>(kProcs, *impl, *obj);
  int i = 0;
  uint64_t ops = 0;
  for (auto _ : state) {
    if (i == kOpsPerRun) {
      state.PauseTiming();
      impl = queue ? make_ms_queue() : make_atomic_counter();
      se = std::make_unique<SelfEnforced>(kProcs, *impl, *obj);
      i = 0;
      state.ResumeTiming();
    }
    auto [m, arg] = random_op(kind, rng);
    se.get()->apply(static_cast<ProcId>(i % kProcs), m, arg);
    ++i;
    ++ops;
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
  state.SetLabel(queue ? "verified-queue" : "verified-counter");
}

BENCHMARK(BM_VerificationThroughput)->Arg(0)->Arg(1);

// Coupled: each process checks after each op; count ops until first ERROR.
void BM_DetectionLatencyCoupled(benchmark::State& state) {
  StepCounter::set_enabled(false);
  int64_t which = state.range(0);
  uint64_t rate_den = static_cast<uint64_t>(state.range(1));
  constexpr size_t kProcs = 3;
  uint64_t total_ops = 0, runs = 0, detected_runs = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    auto impl = make_faulty(which, rate_den, seed++);
    auto obj = make_linearizable_object(make_spec(kind_for(which)));
    SelfEnforced se(kProcs, *impl, *obj);
    std::atomic<uint64_t> ops{0};
    SpinBarrier barrier(kProcs);
    std::vector<std::thread> threads;
    for (ProcId p = 0; p < kProcs; ++p) {
      threads.emplace_back([&, p] {
        Rng rng(seed * 131 + p);
        barrier.arrive_and_wait();
        for (int i = 0; i < 3000 && se.error_count() == 0; ++i) {
          auto [m, arg] = random_op(kind_for(which), rng);
          se.apply(p, m, arg);
          ops.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : threads) t.join();
    total_ops += ops.load();
    ++runs;
    if (se.error_count() > 0) ++detected_runs;
  }
  state.counters["ops_to_detect"] = benchmark::Counter(
      static_cast<double>(total_ops) / static_cast<double>(runs));
  state.counters["detect_rate"] = benchmark::Counter(
      static_cast<double>(detected_runs) / static_cast<double>(runs));
  state.SetLabel(std::string(fault_name(which)) + "/p=1_" +
                 std::to_string(rate_den));
}

BENCHMARK(BM_DetectionLatencyCoupled)
    ->ArgsProduct({{0, 1, 2}, {2, 8, 32}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

// Decoupled: producers never check; a single verifier thread polls.
void BM_DetectionLatencyDecoupled(benchmark::State& state) {
  StepCounter::set_enabled(false);
  int64_t which = state.range(0);
  uint64_t rate_den = static_cast<uint64_t>(state.range(1));
  constexpr size_t kProducers = 3;
  uint64_t total_ops = 0, runs = 0, detected_runs = 0;
  uint64_t seed = 1000;
  for (auto _ : state) {
    auto impl = make_faulty(which, rate_den, seed++);
    auto obj = make_linearizable_object(make_spec(kind_for(which)));
    Decoupled d(kProducers, 1, *impl, *obj);
    std::atomic<uint64_t> ops{0};
    std::atomic<bool> stop{false};
    std::thread verifier([&] {
      while (!stop.load(std::memory_order_acquire) && d.error_count() == 0) {
        d.verify_once(0);
      }
      d.verify_once(0);
    });
    SpinBarrier barrier(kProducers);
    std::vector<std::thread> producers;
    for (ProcId p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        Rng rng(seed * 997 + p);
        barrier.arrive_and_wait();
        for (int i = 0; i < 3000 && d.error_count() == 0; ++i) {
          auto [m, arg] = random_op(kind_for(which), rng);
          d.apply(p, m, arg);
          ops.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : producers) t.join();
    stop.store(true, std::memory_order_release);
    verifier.join();
    total_ops += ops.load();
    ++runs;
    if (d.error_count() > 0) ++detected_runs;
  }
  state.counters["ops_to_detect"] = benchmark::Counter(
      static_cast<double>(total_ops) / static_cast<double>(runs));
  state.counters["detect_rate"] = benchmark::Counter(
      static_cast<double>(detected_runs) / static_cast<double>(runs));
  state.SetLabel(std::string(fault_name(which)) + "/p=1_" +
                 std::to_string(rate_den));
}

BENCHMARK(BM_DetectionLatencyDecoupled)
    ->ArgsProduct({{0, 1, 2}, {2, 8, 32}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

}  // namespace
